"""Barnes: Barnes-Hut hierarchical N-body simulation (Section 5.5;
SPLASH).

Structure, as described in the paper:

* the **tree is built sequentially by the master processor**, which
  reads essentially the entire body array (fine-grained, one record per
  body) and writes the cell array;
* the **force computation is parallel**: bodies live in Morton (tree)
  order and each processor owns a contiguous chunk, standing in for
  SPLASH's cost-zone partition.  Fine-grained per-body writes cause
  write-write false sharing on the pages where partitions meet, but the
  extensive true sharing (traversals read bodies and cells all over the
  space) keeps useless messages few: false sharing shows up mostly as
  useless *data*;
* reads and writes are fine-grained (individual particle records), but
  each processor touches a large region of the shared body/cell space,
  which is why static aggregation pays off (Figure 1).

The octree build and the force traversal are pure functions shared with
the sequential reference, so the DSM run is bitwise comparable.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: float32 words per body record: pos[0:3] vel[3:6] acc[6:9] mass[9] pad.
BODY_REC = 16
#: float32 words per cell record: com[0:3] mass[3] size[4] pad[5:8]
#: children[8:16] (0 empty, +i cell i-1, -j body j-1).
CELL_REC = 16

THETA2 = np.float32(0.49)  # theta = 0.7
EPS2 = np.float32(0.05)
DT = np.float32(0.002)


def _morton_keys(pos: np.ndarray) -> np.ndarray:
    """Morton (Z-order) keys of 3-D positions, 10 bits per axis."""
    q = np.clip((pos / pos.max() * 1023.0).astype(np.int64), 0, 1023)
    keys = np.zeros(pos.shape[0], dtype=np.int64)
    for bit in range(10):
        for axis in range(3):
            keys |= ((q[:, axis] >> bit) & 1) << (3 * bit + axis)
    return keys


@lru_cache(maxsize=4)
def _initial_bodies_cached(n: int) -> np.ndarray:
    rng = np.random.default_rng(99)
    b = np.zeros((n, BODY_REC), dtype=np.float32)
    b[:, 0:3] = rng.uniform(0.0, 100.0, size=(n, 3)).astype(np.float32)
    b[:, 3:6] = rng.standard_normal((n, 3)).astype(np.float32) * 0.1
    b[:, 9] = np.float32(1.0)
    order = np.argsort(_morton_keys(b[:, 0:3]), kind="stable")
    return b[order]


def _initial_bodies(n: int) -> np.ndarray:
    """Deterministic bodies, stored in Morton order: SPLASH Barnes keeps
    the body array in tree order, so contiguous index ranges are spatial
    clusters and the costzone partition owns whole pages (write-write
    false sharing concentrates at partition boundaries).

    Every worker regenerates the same array, so the draw is cached and a
    fresh copy handed out (callers mutate their copy in place)."""
    return _initial_bodies_cached(n).copy()


# ----------------------------------------------------------------------
# Octree build (pure; used by the master worker and by the reference)
# ----------------------------------------------------------------------
#: Leaf bucket capacity (SPLASH-style multi-body leaves; also bounded by
#: the 8 child slots of the serialized cell record).
BUCKET = 8


class _Node:
    __slots__ = ("cx", "cy", "cz", "size", "bodies")

    def __init__(self, cx: float, cy: float, cz: float, size: float) -> None:
        self.cx, self.cy, self.cz, self.size = cx, cy, cz, size
        self.bodies: List[int] = []  # leaf contents until split


def build_tree(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Build the Barnes-Hut octree over positions; returns the serialized
    cell array ((ncells, CELL_REC) float32).

    Level-order vectorized construction, bit-identical to the sequential
    per-body insertion of :func:`build_tree_ref` (asserted by the
    property suite in ``tests/apps/test_vectorized_equiv.py``):

    * the tree *structure* is insertion-order independent -- a node is
      internal iff more than ``BUCKET`` bodies fall inside its box
      (spilling moves all bodies down and the node never re-opens), and
      leaves keep their bodies in ascending index order (spills preserve
      list order, later arrivals append);
    * node *sizes* are exact float64 halvings of the root size, so all
      nodes of one depth share one size and one child-center offset;
    * child centers replicate the scalar arithmetic exactly: the scalar
      code computes ``float32(parent.c) + python_float(q)``, which NEP-50
      weak promotion evaluates as a float32 add of ``float32(q)`` -- the
      vectorized form adds the pre-rounded ``np.float32(q)`` columnwise;
    * centers of mass fold in the same order: per node, bodies ascending
      (leaves) or children in octant order (internal), one float32
      multiply-add per step, batched across nodes one slot at a time.
    """
    n = pos.shape[0]
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    size = float((hi - lo).max()) * 1.001 + 1e-6

    px = np.ascontiguousarray(pos[:, 0])
    py = np.ascontiguousarray(pos[:, 1])
    pz = np.ascontiguousarray(pos[:, 2])

    # ---- level-order partition ------------------------------------
    # Current level: centers (float32 columns) and global node ids.
    cx = np.array([center[0]], dtype=np.float32)
    cy = np.array([center[1]], dtype=np.float32)
    cz = np.array([center[2]], dtype=np.float32)
    gids = np.zeros(1, dtype=np.int64)
    nnodes = 1
    gsize: List[float] = [size]          # per-gid node size (exact f64)
    cur_size = size
    bidx = np.arange(n, dtype=np.int64)  # unsettled bodies (ascending)
    bnode = np.zeros(n, dtype=np.int64)  # local node index per body
    # Per level (== depth): leaf gids + their (nl, BUCKET) body matrix
    # (-1 pad); internal gids + their (ni, 8) child-gid matrix in octant
    # order.
    leaf_parts: List[Tuple[int, np.ndarray, np.ndarray]] = []
    int_parts: List[Tuple[int, np.ndarray, np.ndarray]] = []
    depth = 0
    while bidx.size:
        k = cx.shape[0]
        counts = np.bincount(bnode, minlength=k)
        leaf_sel = counts[bnode] <= BUCKET
        if leaf_sel.any():
            lb, ln = bidx[leaf_sel], bnode[leaf_sel]
            o = np.argsort(ln, kind="stable")
            lb, ln = lb[o], ln[o]
            rank = np.arange(lb.size) - np.searchsorted(ln, ln)
            mat = np.full((k, BUCKET), -1, dtype=np.int64)
            mat[ln, rank] = lb
            li = np.unique(ln)
            leaf_parts.append((depth, gids[li], mat[li]))
        isel = ~leaf_sel
        bidx, bn = bidx[isel], bnode[isel]
        if not bidx.size:
            break
        octs = (
            (px[bidx] >= cx[bn]).astype(np.int64)
            | ((py[bidx] >= cy[bn]).astype(np.int64) << 1)
            | ((pz[bidx] >= cz[bn]).astype(np.int64) << 2)
        )
        ukey, bnode = np.unique(bn * 8 + octs, return_inverse=True)
        pn, po = ukey // 8, ukey % 8
        q = cur_size / 4.0
        qf = np.float32(q)
        nk = ukey.shape[0]
        child_gids = nnodes + np.arange(nk, dtype=np.int64)
        crank = np.arange(nk) - np.searchsorted(pn, pn)
        cmat = np.full((k, 8), -1, dtype=np.int64)
        cmat[pn, crank] = child_gids
        ui = np.unique(pn)
        int_parts.append((depth, gids[ui], cmat[ui]))
        cx = cx[pn] + np.where(po & 1, qf, -qf)
        cy = cy[pn] + np.where(po & 2, qf, -qf)
        cz = cz[pn] + np.where(po & 4, qf, -qf)
        gids = child_gids
        child_size = cur_size / 2.0
        gsize.extend([child_size] * nk)
        cur_size = child_size
        nnodes += nk
        depth += 1

    # ---- pre-order serialization (children in octant order) --------
    child_of = np.full((nnodes, 8), -1, dtype=np.int64)
    for _, gpart, mpart in int_parts:
        child_of[gpart] = mpart
    order = np.empty(nnodes, dtype=np.int64)
    stack = [0]
    cid = 0
    while stack:
        g = stack.pop()
        order[g] = cid
        cid += 1
        for c in child_of[g].tolist()[::-1]:
            if c >= 0:
                stack.append(c)

    # ---- centers of mass, one slot step at a time ------------------
    # The reference fill normalizes each node's com (com / m) *before*
    # the parent folds it in, so accumulation runs depth by depth from
    # the bottom, each group of nodes divided right after its own
    # accumulation completes (leaves and internal nodes at one depth
    # are disjoint; children always live one level deeper).
    com = np.zeros((nnodes, 3), dtype=np.float32)
    m = np.zeros(nnodes, dtype=np.float32)
    leaf_at = {d: (g, mat) for d, g, mat in leaf_parts}
    int_at = {d: (g, mat) for d, g, mat in int_parts}

    def _divide(g: np.ndarray) -> None:
        gm = g[m[g] > 0]
        com[gm] = com[gm] / m[gm, None]

    for d in range(depth, -1, -1):
        if d in leaf_at:
            gpart, mpart = leaf_at[d]
            for kcol in range(BUCKET):
                col = mpart[:, kcol]
                sel = col >= 0
                if not sel.any():
                    break
                g, b = gpart[sel], col[sel]
                w = mass[b]
                com[g] = com[g] + pos[b] * w[:, None]
                m[g] = m[g] + w
            _divide(gpart)
        if d in int_at:
            gpart, mpart = int_at[d]
            for kcol in range(8):
                col = mpart[:, kcol]
                sel = col >= 0
                if not sel.any():
                    break
                g, c = gpart[sel], col[sel]
                cm = m[c]
                com[g] = com[g] + com[c] * cm[:, None]
                m[g] = m[g] + cm
            _divide(gpart)

    # ---- assemble cell records -------------------------------------
    cells = np.zeros((nnodes, CELL_REC), dtype=np.float32)
    cells[order, 0:3] = com
    cells[order, 3] = m
    cells[order, 4] = np.asarray(gsize, dtype=np.float64).astype(np.float32)
    for _, gpart, mpart in leaf_parts:
        cells[order[gpart], 8:16] = (-(mpart + 1)).astype(np.float32)
    for _, gpart, mpart in int_parts:
        refs = np.where(mpart >= 0, order[np.maximum(mpart, 0)] + 1, 0)
        cells[order[gpart], 8:16] = refs.astype(np.float32)
    return cells


def build_tree_ref(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Sequential per-body-insertion reference builder; retained as the
    differential oracle for the vectorized :func:`build_tree`."""
    n = pos.shape[0]
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    size = float((hi - lo).max()) * 1.001 + 1e-6

    nodes: List[_Node] = [_Node(center[0], center[1], center[2], size)]
    slots: List[Dict[int, int]] = [{}]  # node -> octant -> child node id

    def octant(node: _Node, p) -> int:
        return (
            (1 if p[0] >= node.cx else 0)
            | (2 if p[1] >= node.cy else 0)
            | (4 if p[2] >= node.cz else 0)
        )

    def child_center(node: _Node, o: int) -> Tuple[float, float, float, float]:
        q = node.size / 4.0
        return (
            node.cx + (q if o & 1 else -q),
            node.cy + (q if o & 2 else -q),
            node.cz + (q if o & 4 else -q),
            node.size / 2.0,
        )

    def insert(nid: int, j: int) -> None:
        while True:
            node = nodes[nid]
            if not slots[nid]:  # leaf
                if len(node.bodies) < BUCKET:
                    node.bodies.append(j)
                    return
                spill = node.bodies
                node.bodies = []
                for b in spill:
                    _descend_new(nid, b)
                # fall through: continue inserting j below
            o = octant(node, pos[j])
            if o not in slots[nid]:
                cx, cy, cz, s = child_center(node, o)
                nodes.append(_Node(cx, cy, cz, s))
                slots.append({})
                slots[nid][o] = len(nodes) - 1
            nid = slots[nid][o]

    def _descend_new(nid: int, j: int) -> None:
        o = octant(nodes[nid], pos[j])
        if o not in slots[nid]:
            cx, cy, cz, s = child_center(nodes[nid], o)
            nodes.append(_Node(cx, cy, cz, s))
            slots.append({})
            slots[nid][o] = len(nodes) - 1
        insert(slots[nid][o], j)

    for j in range(n):
        insert(0, j)

    # Serialize pre-order; compute centers of mass bottom-up via the
    # serialization recursion.
    cells = np.zeros((len(nodes), CELL_REC), dtype=np.float32)
    order: Dict[int, int] = {}

    def assign(nid: int) -> int:
        cid = len(order)
        order[nid] = cid
        for o in sorted(slots[nid]):
            assign(slots[nid][o])
        return cid

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        assign(0)

        def fill(nid: int) -> Tuple[np.ndarray, np.float32]:
            cid = order[nid]
            node = nodes[nid]
            com = np.zeros(3, dtype=np.float32)
            m = np.float32(0.0)
            ci = 0
            for b in node.bodies:
                cells[cid, 8 + ci] = np.float32(-(b + 1))
                ci += 1
                com = com + pos[b].astype(np.float32) * mass[b]
                m = m + np.float32(mass[b])
            for o in sorted(slots[nid]):
                child = slots[nid][o]
                ccom, cm = fill(child)
                cells[cid, 8 + ci] = np.float32(order[child] + 1)
                ci += 1
                com = com + ccom * cm
                m = m + cm
            if m > 0:
                com = (com / m).astype(np.float32)
            cells[cid, 0:3] = com
            cells[cid, 4] = np.float32(node.size)
            cells[cid, 3] = m
            return com, m

        fill(0)
    finally:
        sys.setrecursionlimit(old_limit)
    return cells


# ----------------------------------------------------------------------
# Force traversal (pure)
# ----------------------------------------------------------------------
def force_on(
    i: int,
    pos_i: np.ndarray,
    read_cell: Callable[[int], np.ndarray],
    read_body: Callable[[int], np.ndarray],
) -> Tuple[np.ndarray, int]:
    """Barnes-Hut acceleration on body ``i``; returns (acc, ninteractions).

    ``read_cell(cid)`` and ``read_body(j)`` fetch records (from shared
    memory in the DSM run, from plain arrays in the reference)."""
    acc = np.zeros(3, dtype=np.float32)
    inter = 0
    stack = [0]
    while stack:
        cid = stack.pop()
        cell = read_cell(cid)
        d = cell[0:3] - pos_i
        r2 = np.float32((d * d).sum()) + EPS2
        if cell[4] * cell[4] < THETA2 * r2:
            inv = np.float32(1.0) / np.float32(np.sqrt(float(r2)))
            acc = acc + d * (cell[3] * inv * inv * inv)
            inter += 1
            continue
        for s in range(8, 16):
            ref = int(cell[s])
            if ref == 0:
                continue
            if ref > 0:
                stack.append(ref - 1)
            else:
                j = -ref - 1
                if j == i:
                    continue
                body = read_body(j)
                db = body[0:3] - pos_i
                rb2 = np.float32((db * db).sum()) + EPS2
                inv = np.float32(1.0) / np.float32(np.sqrt(float(rb2)))
                acc = acc + db * (body[9] * inv * inv * inv)
                inter += 1
    return acc.astype(np.float32), inter


def batched_forces(
    pos_i: np.ndarray,
    ids: np.ndarray,
    get_cells: Callable[[np.ndarray], np.ndarray],
    get_bodies: Callable[[np.ndarray], np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Barnes-Hut accelerations on a batch of bodies at once; returns
    ``(acc (m, 3) float32, interactions (m,) int64)``.

    Level-order version of :func:`force_on`: one frontier of
    (body, cell) pairs per tree level, expanded together.  The opening
    criterion depends only on the cell record and the body position, so
    the visited node *set* per body equals the scalar traversal's; only
    the accumulation order changes (per level: cell terms summed in
    float64 per body via ``bincount``, rounded into the float32
    accumulator, then leaf-body terms likewise).  Per body the partial
    sums depend only on its own pair subsequence, never on the batch,
    so the worker (one block) and the reference (all bodies) fold
    identically.

    ``get_cells(cids)`` / ``get_bodies(js)`` fetch record batches (from
    shared memory in the DSM run, from plain arrays in the reference);
    both may receive duplicate ids within one call."""
    m = int(pos_i.shape[0])
    acc = np.zeros((m, 3), dtype=np.float32)
    inter = np.zeros(m, dtype=np.int64)
    if m == 0:
        return acc, inter
    pb = np.arange(m, dtype=np.int64)  # pair -> batch row
    pc = np.zeros(m, dtype=np.int64)   # pair -> cell id (all start at root)
    while pb.size:
        cells = get_cells(pc)
        d = cells[:, 0:3] - pos_i[pb]
        r2 = (d * d).sum(axis=1) + EPS2
        far = (cells[:, 4] * cells[:, 4]) < (THETA2 * r2)
        if far.any():
            inv = np.float32(1.0) / np.sqrt(r2[far])
            w = cells[far, 3] * inv * inv * inv
            rows = pb[far]
            contrib = d[far] * w[:, None]
            for c in range(3):
                acc[:, c] += np.bincount(
                    rows, weights=contrib[:, c], minlength=m
                ).astype(np.float32)
            inter += np.bincount(rows, minlength=m)
        refs = cells[~far, 8:16].astype(np.int64)
        pair_b = np.repeat(pb[~far], 8)
        flat = refs.reshape(-1)
        keep = flat != 0
        pair_b, flat = pair_b[keep], flat[keep]
        is_cell = flat > 0
        jb = pair_b[~is_cell]
        js = -flat[~is_cell] - 1
        not_self = js != ids[jb]
        jb, js = jb[not_self], js[not_self]
        if js.size:
            brow = get_bodies(js)
            db = brow[:, 0:3] - pos_i[jb]
            rb2 = (db * db).sum(axis=1) + EPS2
            invb = np.float32(1.0) / np.sqrt(rb2)
            wb = brow[:, 9] * invb * invb * invb
            contribb = db * wb[:, None]
            for c in range(3):
                acc[:, c] += np.bincount(
                    jb, weights=contribb[:, c], minlength=m
                ).astype(np.float32)
            inter += np.bincount(jb, minlength=m)
        pb = pair_b[is_cell]
        pc = flat[is_cell] - 1
    return acc, inter


def _soa_noop(_ids: np.ndarray) -> None:
    """Presence hook for :func:`batched_forces_soa` over local arrays."""


def batched_forces_soa(
    pos_i: np.ndarray,
    ids: np.ndarray,
    cell_cols: Tuple[np.ndarray, ...],
    body_cols: Tuple[np.ndarray, ...],
    ensure_cells: Callable[[np.ndarray], None],
    ensure_bodies: Callable[[np.ndarray], None],
) -> Tuple[np.ndarray, np.ndarray]:
    """Structure-of-arrays form of :func:`batched_forces`; bit-identical
    (asserted by the property suite) but ~3x faster: per level it gathers
    1-D float32 columns instead of materializing (npairs, 16) record
    copies, and the child references are pre-converted int32.

    ``cell_cols`` is ``(x, y, z, mass, size_sq, refs int32 (nc, 8))``;
    ``body_cols`` is ``(x, y, z, mass)``.  ``ensure_cells(cids)`` /
    ``ensure_bodies(js)`` populate the columns for any ids not yet
    present (fetching from shared memory in the DSM run); they receive
    exactly the id batches :func:`batched_forces` hands its getters, so
    coherence traffic is unchanged.

    Equivalence argument: the float32 arithmetic is performed in the
    same elementwise order (``d = c - p``; ``r2 = ((dx^2 + dy^2) + dz^2)
    + EPS2`` matches the 3-wide sequential ``sum(axis=1)``; weights fold
    through the same float64 ``bincount`` in the same pair order), and
    ``size_sq`` is the same float32 product the AoS kernel forms inline.
    """
    cx, cy, cz, cm, cs2, crefs = cell_cols
    bx, by, bz, bm = body_cols
    m = int(pos_i.shape[0])
    acc = np.zeros((m, 3), dtype=np.float32)
    inter = np.zeros(m, dtype=np.int64)
    if m == 0:
        return acc, inter
    px = np.ascontiguousarray(pos_i[:, 0])
    py = np.ascontiguousarray(pos_i[:, 1])
    pz = np.ascontiguousarray(pos_i[:, 2])
    pb = np.arange(m, dtype=np.int64)  # pair -> batch row
    pc = np.zeros(m, dtype=np.int64)   # pair -> cell id (all start at root)
    while pb.size:
        ensure_cells(pc)
        dx = cx[pc]
        dx -= px[pb]
        dy = cy[pc]
        dy -= py[pb]
        dz = cz[pc]
        dz -= pz[pb]
        r2 = dx * dx
        r2 += dy * dy
        r2 += dz * dz
        r2 += EPS2
        far = cs2[pc] < (THETA2 * r2)
        fi = np.flatnonzero(far)
        if fi.size:
            inv = np.float32(1.0) / np.sqrt(r2[fi])
            w = cm[pc[fi]] * inv
            w *= inv
            w *= inv
            rows = pb[fi]
            acc[:, 0] += np.bincount(
                rows, weights=dx[fi] * w, minlength=m
            ).astype(np.float32)
            acc[:, 1] += np.bincount(
                rows, weights=dy[fi] * w, minlength=m
            ).astype(np.float32)
            acc[:, 2] += np.bincount(
                rows, weights=dz[fi] * w, minlength=m
            ).astype(np.float32)
            inter += np.bincount(rows, minlength=m)
        ni = np.flatnonzero(~far)
        flat = crefs[pc[ni]].reshape(-1)
        pair_b = np.repeat(pb[ni], 8)
        keep = flat != 0
        pair_b, flat = pair_b[keep], flat[keep]
        is_cell = flat > 0
        jb = pair_b[~is_cell]
        js = (-flat[~is_cell] - 1).astype(np.int64)
        not_self = js != ids[jb]
        jb, js = jb[not_self], js[not_self]
        if js.size:
            ensure_bodies(js)
            dbx = bx[js]
            dbx -= px[jb]
            dby = by[js]
            dby -= py[jb]
            dbz = bz[js]
            dbz -= pz[jb]
            rb2 = dbx * dbx
            rb2 += dby * dby
            rb2 += dbz * dbz
            rb2 += EPS2
            invb = np.float32(1.0) / np.sqrt(rb2)
            wb = bm[js] * invb
            wb *= invb
            wb *= invb
            acc[:, 0] += np.bincount(
                jb, weights=dbx * wb, minlength=m
            ).astype(np.float32)
            acc[:, 1] += np.bincount(
                jb, weights=dby * wb, minlength=m
            ).astype(np.float32)
            acc[:, 2] += np.bincount(
                jb, weights=dbz * wb, minlength=m
            ).astype(np.float32)
            inter += np.bincount(jb, minlength=m)
        pb = pair_b[is_cell]
        pc = (flat[is_cell] - 1).astype(np.int64)
    return acc, inter


#: Flops charged per gravitational interaction.
FLOPS_PER_INTERACTION = 60


def _owned(n: int, nprocs: int, pid: int) -> List[int]:
    """Costzone-style partition: a contiguous range of the Morton-ordered
    body array (a contiguous chunk of the tree walk)."""
    lo, hi = Application.block_range(n, nprocs, pid)
    return list(range(lo, hi))


@AppRegistry.register
class Barnes(Application):
    """Barnes-Hut with master tree build and cyclic body partition."""

    name = "Barnes"
    checksum_rtol = 1e-4

    datasets = {
        # Paper: 16K bodies; scaled for simulator runtime.  1080 bodies
        # (not a multiple of 64 bodies/page) keeps the partition
        # boundaries inside pages, preserving the boundary write-write
        # false sharing of the original.
        "16K": {"n": 1080, "iters": 2, "max_cells": 4096},
        # Paper full size: 32K bodies, unscaled.  Only reachable at
        # simulator speed through the bulk-access fast path; kept out of
        # the default golden gate (see ``--full`` in repro.bench).
        "32K": {"n": 32768, "iters": 2, "max_cells": 65536},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return (p["n"] * BODY_REC + p["max_cells"] * CELL_REC) * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {
            "bodies": tmk.array("bodies", (p["n"], BODY_REC), "float32"),
            "cells": tmk.array("cells", (p["max_cells"], CELL_REC), "float32"),
            "meta": tmk.array("meta", (16,), "int32"),
        }

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        bodies, cells, meta = handles["bodies"], handles["cells"], handles["meta"]
        n, iters = params["n"], params["iters"]
        mine = _owned(n, proc.nprocs, proc.id)

        # Distributed initialization: owners write their body ranges.
        init = _initial_bodies(n)
        if mine:
            bodies.write_rows(proc, mine[0], init[mine[0] : mine[-1] + 1])
        proc.barrier()

        rows = np.asarray(mine, dtype=np.int64)
        for _ in range(iters):
            # ---- Master builds the tree, reading every body record
            # fine-grained (one 10-word range per body, gathered in
            # index order), then writes the serialized cells.
            if proc.id == 0:
                recs = bodies.gather_rows(
                    proc, np.arange(n, dtype=np.int64), 0, 10
                )
                pos = np.ascontiguousarray(recs[:, 0:3])
                mass = np.ascontiguousarray(recs[:, 9])
                tree = build_tree(pos, mass)
                if tree.shape[0] > params["max_cells"]:
                    raise RuntimeError(
                        f"tree needs {tree.shape[0]} cells, "
                        f"max_cells={params['max_cells']}"
                    )
                proc.compute(us=15.0 * n)  # sequential build work
                cells.scatter_rows(
                    proc, np.arange(tree.shape[0], dtype=np.int64), tree
                )
                meta.write(proc, 0, np.array([tree.shape[0]], np.int32))
            proc.barrier()

            # ---- Parallel force computation over the cyclic partition.
            # Records are still read per body / per cell (10- and 16-word
            # ranges), but batched per traversal level: each level's
            # unseen records are gathered together in ascending id
            # order.  The visited record SET matches the scalar
            # traversal's, so coherence traffic is unchanged.
            mc = params["max_cells"]
            c_x = np.zeros(mc, dtype=np.float32)
            c_y = np.zeros(mc, dtype=np.float32)
            c_z = np.zeros(mc, dtype=np.float32)
            c_m = np.zeros(mc, dtype=np.float32)
            c_s2 = np.zeros(mc, dtype=np.float32)
            c_refs = np.zeros((mc, 8), dtype=np.int32)
            cell_have = np.zeros(mc, dtype=bool)
            cell_seen = np.zeros(mc, dtype=bool)
            b_x = np.zeros(n, dtype=np.float32)
            b_y = np.zeros(n, dtype=np.float32)
            b_z = np.zeros(n, dtype=np.float32)
            b_m = np.zeros(n, dtype=np.float32)
            body_have = np.zeros(n, dtype=bool)
            body_seen = np.zeros(n, dtype=bool)
            own = bodies.gather_rows(proc, rows, 0, 10) if mine else \
                np.zeros((0, 10), dtype=np.float32)
            b_x[rows] = own[:, 0]
            b_y[rows] = own[:, 1]
            b_z[rows] = own[:, 2]
            b_m[rows] = own[:, 9]
            body_have[rows] = True
            body_seen[rows] = True

            def ensure_cells(cids: np.ndarray) -> None:
                # Marking the "have" flags first makes them double as the
                # dedup scratch: the sorted missing set falls out of one
                # flatnonzero over the flag delta, an order of magnitude
                # cheaper than np.unique on the raw id stream.
                cand = cids[~cell_have[cids]]
                if cand.size:
                    cell_have[cand] = True
                    missing = np.flatnonzero(cell_have != cell_seen)
                    cell_seen[missing] = True
                    recs = cells.gather_rows(proc, missing, 0, CELL_REC)
                    c_x[missing] = recs[:, 0]
                    c_y[missing] = recs[:, 1]
                    c_z[missing] = recs[:, 2]
                    c_m[missing] = recs[:, 3]
                    c_s2[missing] = recs[:, 4] * recs[:, 4]
                    c_refs[missing] = recs[:, 8:16].astype(np.int32)

            def ensure_bodies(js: np.ndarray) -> None:
                cand = js[~body_have[js]]
                if cand.size:
                    body_have[cand] = True
                    missing = np.flatnonzero(body_have != body_seen)
                    body_seen[missing] = True
                    recs = bodies.gather_rows(proc, missing, 0, 10)
                    b_x[missing] = recs[:, 0]
                    b_y[missing] = recs[:, 1]
                    b_z[missing] = recs[:, 2]
                    b_m[missing] = recs[:, 9]

            acc, inter = batched_forces_soa(
                np.ascontiguousarray(own[:, 0:3]), rows,
                (c_x, c_y, c_z, c_m, c_s2, c_refs),
                (b_x, b_y, b_z, b_m),
                ensure_cells, ensure_bodies,
            )
            proc.compute(flops=int(inter.sum()) * FLOPS_PER_INTERACTION)
            proc.barrier()

            # ---- Update phase: owners integrate their bodies, publishing
            # the new accelerations with the position/velocity write.
            # Keeping accelerations private until here means the force
            # phase is read-only, so traversal reads of remote records
            # are never concurrent with owner writes (the phases are
            # race-free under the repro.trace happens-before check).
            if mine:
                recs = bodies.gather_rows(proc, rows, 0, BODY_REC)
                out = recs[:, 0:9].copy()
                out[:, 6:9] = acc
                out[:, 3:6] = out[:, 3:6] + out[:, 6:9] * DT
                out[:, 0:3] = out[:, 0:3] + out[:, 3:6] * DT
                proc.compute(flops=12 * len(mine))
                bodies.scatter_rows(proc, rows, out, 0)
            proc.barrier()

        local = 0.0
        if mine:
            local = float(
                np.abs(bodies.gather_rows(proc, rows, 0, 9))
                .astype(np.float64).sum()
            )
        return self.collect_checksum(proc, handles, local)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: master tree build, read-only force phase,
        fine-grained owner updates.  The cell writes are ``may`` (the
        tree size is data-dependent); the per-body 9-word updates are
        ``must`` and produce the predicted boundary-page conflicts."""
        from repro.analyze.access import AccessPattern

        bodies, cells, meta = (
            handles["bodies"], handles["cells"], handles["meta"],
        )
        n = params["n"]
        ranges = [self.block_range(n, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            if hi > lo:
                ph.write_rows(bodies, p, lo, hi)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:build")
            for j in range(n):
                ph.read(bodies, 0, (j, 0), 10)
            ph.write_all(cells, 0, must=False)
            ph.write(meta, 0, 0, 1)
            ph = pat.phase(f"iter{it}:force")
            for p, (lo, hi) in enumerate(ranges):
                ph.read_all(cells, p, must=False)
                ph.read_all(bodies, p, must=False)
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), 10)
            ph = pat.phase(f"iter{it}:update")
            for p, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), BODY_REC)
                    ph.write(bodies, p, (i, 0), 9)
        ph = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            for i in range(lo, hi):
                ph.read(bodies, p, (i, 0), 9)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        n, iters = p["n"], p["iters"]
        b = _initial_bodies(n)
        for _ in range(iters):
            tree = build_tree(b[:, 0:3].copy(), b[:, 9].copy())
            acc, _ = batched_forces_soa(
                np.ascontiguousarray(b[:, 0:3]),
                np.arange(n, dtype=np.int64),
                (
                    np.ascontiguousarray(tree[:, 0]),
                    np.ascontiguousarray(tree[:, 1]),
                    np.ascontiguousarray(tree[:, 2]),
                    np.ascontiguousarray(tree[:, 3]),
                    tree[:, 4] * tree[:, 4],
                    tree[:, 8:16].astype(np.int32),
                ),
                (
                    np.ascontiguousarray(b[:, 0]),
                    np.ascontiguousarray(b[:, 1]),
                    np.ascontiguousarray(b[:, 2]),
                    np.ascontiguousarray(b[:, 9]),
                ),
                _soa_noop, _soa_noop,
            )
            b[:, 6:9] = acc
            b[:, 3:6] = b[:, 3:6] + b[:, 6:9] * DT
            b[:, 0:3] = b[:, 0:3] + b[:, 3:6] * DT
        return float(np.abs(b[:, 0:9]).astype(np.float64).sum())

"""Writing your own application against the library.

Implements a parallel histogram (a workload NOT in the paper) as an
``Application`` subclass: each processor bins its block of samples into
a private region of a shared histogram matrix, then processor 0 reduces.
Registering it makes the whole harness machinery (unit sweeps, the
cache, correctness checks against a sequential reference) available for
free.

    python examples/custom_app.py
"""

import numpy as np

from repro.apps.base import Application, AppRegistry, run_app
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks
from repro.sim.config import SimConfig

NBINS = 256


def _samples(n: int) -> np.ndarray:
    rng = np.random.default_rng(2024)
    return rng.integers(0, NBINS, size=n).astype(np.int32)


@AppRegistry.register
class Histogram(Application):
    """Per-processor partial histograms + master reduction."""

    name = "Histogram"
    checksum_rtol = 0.0

    datasets = {
        "1M": {"nsamples": 1 << 20},
        "4M": {"nsamples": 1 << 22},
    }

    def heap_bytes(self, dataset: str) -> int:
        return 8 * NBINS * 4 + NBINS * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        return {
            # One row of bins per processor: private regions, but rows of
            # 1 KB share pages -- false sharing you can measure!
            "partial": tmk.array("partial", (8, NBINS), "int32"),
            "result": tmk.array("result", (NBINS,), "int32"),
        }

    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        partial, result = handles["partial"], handles["result"]
        n = params["nsamples"]
        lo, hi = self.block_range(n, proc.nprocs, proc.id)
        counts = np.bincount(_samples(n)[lo:hi], minlength=NBINS).astype(np.int32)
        proc.compute(flops=2 * (hi - lo))
        partial.write_row(proc, proc.id, counts)
        proc.barrier()
        if proc.id == 0:
            total = np.zeros(NBINS, dtype=np.int64)
            for p in range(proc.nprocs):
                total += partial.read_row(proc, p)
            proc.compute(flops=proc.nprocs * NBINS)
            result.write(proc, 0, total.astype(np.int32))
        proc.barrier()
        checksum = float((result.read(proc, 0, NBINS).astype(np.int64) ** 2).sum())
        proc.barrier()
        return checksum

    def reference(self, dataset: str) -> float:
        n = self.params(dataset)["nsamples"]
        total = np.bincount(_samples(n), minlength=NBINS).astype(np.int64)
        return float((total**2).sum())


def main() -> None:
    app = Histogram()
    ref = app.reference("1M")
    print(f"sequential reference checksum: {ref:.0f}\n")
    for label, cfg in [
        ("4K", SimConfig(nprocs=8, unit_pages=1)),
        ("16K", SimConfig(nprocs=8, unit_pages=4)),
        ("Dyn", SimConfig(nprocs=8, dynamic=True)),
    ]:
        res = run_app(app, "1M", cfg)
        ok = "ok" if res.checksum == ref else "MISMATCH"
        print(f"{label:>4}: time={res.time_us / 1e3:8.2f} ms  "
              f"messages={res.comm.total_messages:4d}  "
              f"useless={res.comm.useless_messages:3d}  checksum {ok}")
    print("\nThe 8 partial rows (1 KB each) pack 4 rows per 4 KB page, so the "
          "master's\nreduction faults pull multi-writer diffs -- your own "
          "false sharing, measured\nthe paper's way.")


if __name__ == "__main__":
    main()

"""Static false-sharing layout advisor.

Third pillar of :mod:`repro.analyze`: given an application's declared
:class:`~repro.analyze.access.AccessPattern`, find the allocations whose
*layout* -- not their computation -- causes write-write false sharing or
useless diff data at the paper's 4 / 8 / 16 KB consistency units, and
propose concrete re-layouts as :class:`repro.core.shared.PadSpec` plans
that the runtime can actually apply (``run_app(..., layout_plan=...)``).

Detection
---------
Per unit size the advisor reuses the predictor's two conflict analyses:

* **write-write units** (:func:`repro.analyze.predict._conflict_pages`
  at unit granularity): units must-written by >= 2 processors inside one
  barrier epoch;
* **useless-fetch units** (:func:`repro.analyze.predict.useless_by_unit`):
  units whose diffs provably carry words the fetching processor never
  reads.

Remedies
--------
``pad-partition``
    When every processor's must-write footprint in an allocation is one
    contiguous element block and the blocks are disjoint (block-
    partitioned arrays like Barnes' ``bodies``), start each block on a
    unit boundary.  Removes every intra-allocation write-write unit.
``hot-cold-split``
    When an allocation's waste comes from units mixing *hot* words
    (written by one processor, read by another -- e.g. Jacobi's halo
    boundary rows) with *cold* private words, split each hot run into
    its own unit-aligned segment (snapped to whole rows for 2-D arrays)
    so diffs ship exactly the consumed words.
``per-proc-blocking``
    Advisory only (no :class:`~repro.core.shared.PadSpec`): write-write
    conflicts exist but processors' write footprints interleave, so no
    static padding helps -- the *iteration space*, not the layout, needs
    re-blocking.

Every concrete proposal is scored by *re-running the whole static
analysis under the plan* (``build_pattern(..., layout_plan=plan)``), so
the predicted deltas come from the same interval algebra as the
baseline numbers, and a proposal is only kept when it strictly improves
at least one conflict metric without regressing the other.

Crosscheck
----------
As with :mod:`repro.analyze.crosscheck`, predictions are validated
against real runs: for pinned (app, unit, allocation, remedy) cells the
advisor's plan is applied to a simulation and the *observed* conflict
pages / useless bytes must drop as predicted while the checksum stays
bit-identical (padding must never change results).  The observed
numbers live in a committed baseline
(``benchmarks/analyze/layout_crosscheck.json``); drift fails the gate
until re-recorded with ``--update``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.access import BuiltPattern, build_pattern
from repro.analyze.predict import (
    UNIT_SIZES,
    Interval,
    _conflict_pages,
    merge,
    subtract,
    total,
    useless_by_unit,
)
from repro.apps.base import get_app, run_app
from repro.bench.golden import SMALL_DATASETS
from repro.bench.harness import config_for
from repro.core.shared import LayoutPlan, PadSpec, SharedArray
from repro.dsm.diff import WORD

#: The committed observed-numbers baseline (repository root relative).
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "analyze"
    / "layout_crosscheck.json"
)

#: Pinned crosscheck cells: (app, dataset, unit label, allocation,
#: remedy kind, observed metric that must strictly drop).
CROSSCHECK_CELLS: Tuple[Tuple[str, str, str, str, str, str], ...] = (
    ("Barnes", "16K", "4K", "bodies", "pad-partition", "ww-pages"),
    ("Jacobi", "1Kx1K", "8K", "grid", "hot-cold-split", "useless-bytes"),
)

_UNIT_BYTES = {"4K": 4096, "8K": 8192, "16K": 16384}


def _intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two merged interval sets."""
    return subtract(list(a), subtract(list(a), list(b)))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Remedy:
    """One layout proposal for one (allocation, unit size)."""

    kind: str
    """``pad-partition`` | ``hot-cold-split`` | ``per-proc-blocking``."""

    array: str
    unit_bytes: int

    segments: Tuple[Tuple[int, int], ...]
    """The proposed :class:`~repro.core.shared.PadSpec` segment tiling
    (empty for advisory-only remedies)."""

    note: str

    ww_units_before: int
    ww_units_after: int
    """Write-write conflicting units at this unit size, whole heap."""

    useless_words_before: int
    useless_words_after: int
    """Useless-data lower bound (words) at this unit size, whole heap."""

    useless_units_before: int
    useless_units_after: int
    """Units with a positive useless-word attribution."""

    @property
    def conflict_units_before(self) -> int:
        """Units involved in either conflict kind (the advisor's
        headline "conflict pages" metric)."""
        return self.ww_units_before + self.useless_units_before

    @property
    def conflict_units_after(self) -> int:
        return self.ww_units_after + self.useless_units_after

    @property
    def advisory(self) -> bool:
        return not self.segments

    def plan(self) -> LayoutPlan:
        """The remedy as an applicable layout plan."""
        if self.advisory:
            raise ValueError(f"{self.kind} remedy carries no PadSpec")
        return {
            self.array: PadSpec(self.array, self.unit_bytes, self.segments)
        }

    def render(self) -> str:
        head = (
            f"[{self.unit_bytes // 1024}K] {self.array}: {self.kind} "
            f"({len(self.segments)} segment(s))"
        )
        if self.advisory:
            return f"{head}\n    {self.note}"
        return (
            f"{head}\n"
            f"    conflict units {self.conflict_units_before} -> "
            f"{self.conflict_units_after} "
            f"(ww {self.ww_units_before} -> {self.ww_units_after}, "
            f"useless-carrying {self.useless_units_before} -> "
            f"{self.useless_units_after}); "
            f"useless data {self.useless_words_before * WORD / 1024:.1f} "
            f"-> {self.useless_words_after * WORD / 1024:.1f} KB\n"
            f"    {self.note}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "array": self.array,
            "unit_bytes": self.unit_bytes,
            "segments": [list(s) for s in self.segments],
            "note": self.note,
            "ww_units_before": self.ww_units_before,
            "ww_units_after": self.ww_units_after,
            "useless_words_before": self.useless_words_before,
            "useless_words_after": self.useless_words_after,
            "useless_units_before": self.useless_units_before,
            "useless_units_after": self.useless_units_after,
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "Remedy":
        return cls(
            kind=str(doc["kind"]),
            array=str(doc["array"]),
            unit_bytes=int(doc["unit_bytes"]),  # type: ignore[arg-type]
            segments=tuple(
                (int(s[0]), int(s[1]))
                for s in doc["segments"]  # type: ignore[union-attr]
            ),
            note=str(doc["note"]),
            ww_units_before=int(doc["ww_units_before"]),  # type: ignore[arg-type]
            ww_units_after=int(doc["ww_units_after"]),  # type: ignore[arg-type]
            useless_words_before=int(doc["useless_words_before"]),  # type: ignore[arg-type]
            useless_words_after=int(doc["useless_words_after"]),  # type: ignore[arg-type]
            useless_units_before=int(doc["useless_units_before"]),  # type: ignore[arg-type]
            useless_units_after=int(doc["useless_units_after"]),  # type: ignore[arg-type]
        )


@dataclass
class LayoutReport:
    """The advisor's full output for one (app, dataset, nprocs)."""

    app: str
    dataset: str
    nprocs: int

    baseline: Dict[int, Dict[str, int]] = field(default_factory=dict)
    """unit_bytes -> {"ww_units", "useless_words", "useless_units"}."""

    remedies: List[Remedy] = field(default_factory=list)

    def best(
        self, array: str, unit_bytes: int, kind: Optional[str] = None
    ) -> Optional[Remedy]:
        """The largest-conflict-reduction concrete remedy for one
        (allocation, unit size), optionally restricted to a kind."""
        cands = [
            r
            for r in self.remedies
            if r.array == array
            and r.unit_bytes == unit_bytes
            and not r.advisory
            and (kind is None or r.kind == kind)
        ]
        if not cands:
            return None
        return max(
            cands,
            key=lambda r: (
                r.conflict_units_before - r.conflict_units_after,
                r.useless_words_before - r.useless_words_after,
            ),
        )

    def render(self) -> str:
        lines = [f"{self.app} {self.dataset} on {self.nprocs} procs:"]
        for ub in sorted(self.baseline):
            b = self.baseline[ub]
            lines.append(
                f"[{ub // 1024}K] baseline: {b['ww_units']} ww unit(s), "
                f"{b['useless_units']} useless-carrying unit(s), "
                f"useless data >= {b['useless_words'] * WORD / 1024:.1f} KB"
            )
        if not self.remedies:
            lines.append("  no layout remedies (pattern is layout-clean)")
        for rem in self.remedies:
            lines.append("  " + rem.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "dataset": self.dataset,
            "nprocs": self.nprocs,
            "baseline": {
                str(ub): dict(stats)
                for ub, stats in sorted(self.baseline.items())
            },
            "remedies": [r.to_json_dict() for r in self.remedies],
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "LayoutReport":
        baseline_doc: Dict[str, Dict[str, int]] = doc["baseline"]  # type: ignore[assignment]
        return cls(
            app=str(doc["app"]),
            dataset=str(doc["dataset"]),
            nprocs=int(doc["nprocs"]),  # type: ignore[arg-type]
            baseline={
                int(ub): {k: int(v) for k, v in stats.items()}
                for ub, stats in baseline_doc.items()
            },
            remedies=[
                Remedy.from_json_dict(r)
                for r in doc["remedies"]  # type: ignore[union-attr]
            ],
        )


# ----------------------------------------------------------------------
# Per-allocation footprint extraction
# ----------------------------------------------------------------------
def _array_word_range(arr: SharedArray) -> Tuple[int, int]:
    wpe = arr.dtype.itemsize // WORD
    w0 = arr.word_offset(0)
    return w0, w0 + arr.size * wpe


def _footprints(
    built: BuiltPattern, w0: int, w1: int
) -> Tuple[Dict[int, List[Interval]], Dict[int, List[Interval]]]:
    """(per-proc merged must-write intervals, per-proc merged read
    intervals incl. ``may``) clipped to the allocation ``[w0, w1)``."""
    writes: Dict[int, List[Interval]] = {}
    reads: Dict[int, List[Interval]] = {}
    for ph in built.pattern.phases:
        for acc in ph.accesses:
            a, b = max(acc.word0, w0), min(acc.word1, w1)
            if b <= a:
                continue
            if acc.op == "write" and acc.must:
                writes.setdefault(acc.proc, []).append((a, b))
            elif acc.op == "read":
                reads.setdefault(acc.proc, []).append((a, b))
    return (
        {p: merge(iv) for p, iv in writes.items()},
        {p: merge(iv) for p, iv in reads.items()},
    )


def _boundaries_to_segments(
    bounds: Sequence[int], size: int
) -> Tuple[Tuple[int, int], ...]:
    cuts = sorted({b for b in bounds if 0 < b < size} | {0, size})
    return tuple(
        (cuts[i], cuts[i + 1] - cuts[i]) for i in range(len(cuts) - 1)
    )


def _pad_partition_segments(
    arr: SharedArray, writes: Dict[int, List[Interval]]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Segment tiling that starts each processor's write block on a unit
    boundary, or ``None`` when the footprints are not block-shaped."""
    w0, _ = _array_word_range(arr)
    wpe = arr.dtype.itemsize // WORD
    blocks: List[Interval] = []
    for iv in writes.values():
        if len(iv) != 1:
            return None  # non-contiguous writer footprint
        blocks.append(iv[0])
    blocks.sort()
    bounds: List[int] = []
    prev_end = 0
    for a, b in blocks:
        if a < prev_end:
            return None  # overlapping writers: not a partition
        prev_end = b
        for w in (a, b):
            rel = w - w0
            if rel % wpe:
                return None  # block edge splits an element
            bounds.append(rel // wpe)
    segments = _boundaries_to_segments(bounds, arr.size)
    return segments if len(segments) > 1 else None


def _hot_cold_segments(
    arr: SharedArray,
    writes: Dict[int, List[Interval]],
    reads: Dict[int, List[Interval]],
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Segment tiling that isolates every hot run (written by one
    processor, read by another) into its own aligned segment, snapped to
    whole rows for 2-D arrays; ``None`` when there is nothing to split."""
    w0, _ = _array_word_range(arr)
    wpe = arr.dtype.itemsize // WORD
    row = arr.shape[-1] if len(arr.shape) >= 2 else 1
    bounds: List[int] = []
    hot_runs = 0
    for p, wiv in writes.items():
        others: List[Interval] = []
        for q, riv in reads.items():
            if q != p:
                others.extend(riv)
        for a, b in _intersect(wiv, merge(others)):
            es = (a - w0) // wpe // row * row
            ee = -(-(-(-(b - w0) // wpe)) // row) * row
            bounds.extend((max(es, 0), min(ee, arr.size)))
            hot_runs += 1
    if not hot_runs:
        return None
    segments = _boundaries_to_segments(bounds, arr.size)
    return segments if len(segments) > 1 else None


# ----------------------------------------------------------------------
# The advisor
# ----------------------------------------------------------------------
def _unit_stats(
    built: BuiltPattern, unit_bytes: int
) -> Tuple[List[int], Dict[int, int]]:
    wpu = unit_bytes // WORD
    return _conflict_pages(built, wpu), useless_by_unit(built, wpu)


def advise(
    app_name: str,
    dataset: Optional[str] = None,
    nprocs: int = 8,
    unit_sizes: Sequence[int] = UNIT_SIZES,
) -> LayoutReport:
    """Run the layout advisor for one (application, dataset, nprocs)."""
    app = get_app(app_name)
    dataset = dataset if dataset is not None else SMALL_DATASETS[app_name]
    built = build_pattern(app, dataset, nprocs)
    report = LayoutReport(app=app_name, dataset=dataset, nprocs=nprocs)

    arrays = {
        name: h
        for name, h in built.handles.items()
        if isinstance(h, SharedArray)
    }
    for ub in unit_sizes:
        wpu = ub // WORD
        ww_units, useless_units = _unit_stats(built, ub)
        report.baseline[ub] = {
            "ww_units": len(ww_units),
            "useless_words": sum(useless_units.values()),
            "useless_units": len(useless_units),
        }
        for name, arr in arrays.items():
            w0, w1 = _array_word_range(arr)
            u_lo, u_hi = w0 // wpu, (w1 - 1) // wpu
            alloc_ww = [u for u in ww_units if u_lo <= u <= u_hi]
            alloc_useless = sum(
                n for u, n in useless_units.items() if u_lo <= u <= u_hi
            )
            if not alloc_ww and not alloc_useless:
                continue
            writes, reads = _footprints(built, w0, w1)

            candidates: List[Tuple[str, Tuple[Tuple[int, int], ...], str]] = []
            if alloc_ww:
                seg = _pad_partition_segments(arr, writes)
                if seg is not None:
                    candidates.append(
                        (
                            "pad-partition",
                            seg,
                            f"start each of the {len(seg)} per-processor "
                            f"write blocks on a {ub // 1024} KB unit "
                            f"boundary",
                        )
                    )
                else:
                    report.remedies.append(
                        Remedy(
                            kind="per-proc-blocking",
                            array=name,
                            unit_bytes=ub,
                            segments=(),
                            note=(
                                f"{len(alloc_ww)} write-write unit(s) but "
                                f"processor write footprints interleave; "
                                f"no static padding helps -- re-block the "
                                f"iteration space so each processor "
                                f"writes a contiguous block"
                            ),
                            ww_units_before=len(ww_units),
                            ww_units_after=len(ww_units),
                            useless_words_before=sum(useless_units.values()),
                            useless_words_after=sum(useless_units.values()),
                            useless_units_before=len(useless_units),
                            useless_units_after=len(useless_units),
                        )
                    )
            if alloc_useless:
                seg = _hot_cold_segments(arr, writes, reads)
                if seg is not None:
                    candidates.append(
                        (
                            "hot-cold-split",
                            seg,
                            f"isolate cross-processor hot runs into their "
                            f"own {ub // 1024} KB-aligned segments so "
                            f"diffs carry only consumed words",
                        )
                    )

            for kind, segments, note in candidates:
                plan: LayoutPlan = {name: PadSpec(name, ub, segments)}
                padded = build_pattern(app, dataset, nprocs, layout_plan=plan)
                ww2, useless2 = _unit_stats(padded, ub)
                rem = Remedy(
                    kind=kind,
                    array=name,
                    unit_bytes=ub,
                    segments=segments,
                    note=note,
                    ww_units_before=len(ww_units),
                    ww_units_after=len(ww2),
                    useless_words_before=sum(useless_units.values()),
                    useless_words_after=sum(useless2.values()),
                    useless_units_before=len(useless_units),
                    useless_units_after=len(useless2),
                )
                improves = (
                    rem.ww_units_after < rem.ww_units_before
                    or rem.useless_words_after < rem.useless_words_before
                )
                regresses = (
                    rem.ww_units_after > rem.ww_units_before
                    or rem.useless_words_after > rem.useless_words_before
                )
                if improves and not regresses:
                    report.remedies.append(rem)
    return report


# ----------------------------------------------------------------------
# Traced crosscheck
# ----------------------------------------------------------------------
def _observed_alloc_ww_pages(result, array_name: str) -> int:
    """Dynamically multi-written 4 KB pages inside one allocation."""
    from repro.trace.attribution import concurrent_write_pages

    trace = result.trace
    assert trace is not None, "run was configured with trace=True"
    layout = trace.layout
    count = 0
    for page in concurrent_write_pages(trace):
        alloc = layout.allocation_containing(page * layout.page_size)
        if alloc is not None and alloc.name == array_name:
            count += 1
    return count


def crosscheck_cell(
    app_name: str,
    dataset: str,
    unit_label: str,
    array_name: str,
    kind: str,
    metric: str,
    nprocs: int = 8,
) -> Tuple[Dict[str, object], List[str]]:
    """Advise one cell, apply the winning plan to a real simulation, and
    compare observed against predicted.  Returns (record, failures)."""
    ub = _UNIT_BYTES[unit_label]
    report = advise(app_name, dataset, nprocs, unit_sizes=(ub,))
    remedy = report.best(array_name, ub, kind)
    failures: List[str] = []
    if remedy is None:
        return (
            {"error": f"no {kind} remedy proposed for {array_name}"},
            [f"advisor proposed no {kind} remedy for {array_name} @{unit_label}"],
        )
    if not remedy.conflict_units_after < remedy.conflict_units_before:
        failures.append(
            f"predicted conflict-unit reduction not positive: "
            f"{remedy.conflict_units_before} -> {remedy.conflict_units_after}"
        )

    need_trace = metric == "ww-pages"
    config = config_for(unit_label, nprocs=nprocs, trace=need_trace)
    app = get_app(app_name)
    base = run_app(app, dataset, config)
    padded = run_app(app, dataset, config, layout_plan=remedy.plan())

    record: Dict[str, object] = {
        "kind": remedy.kind,
        "array": array_name,
        "unit_bytes": ub,
        "metric": metric,
        "predicted_conflict_units_before": remedy.conflict_units_before,
        "predicted_conflict_units_after": remedy.conflict_units_after,
        "predicted_useless_words_before": remedy.useless_words_before,
        "predicted_useless_words_after": remedy.useless_words_after,
        "observed_useless_bytes_before": base.comm.useless_bytes,
        "observed_useless_bytes_after": padded.comm.useless_bytes,
        "checksum_equal": padded.checksum == base.checksum,
    }
    if need_trace:
        record["observed_ww_pages_before"] = _observed_alloc_ww_pages(
            base, array_name
        )
        record["observed_ww_pages_after"] = _observed_alloc_ww_pages(
            padded, array_name
        )

    if not record["checksum_equal"]:
        failures.append(
            f"checksum changed under the plan: "
            f"{base.checksum!r} -> {padded.checksum!r}"
        )
    if metric == "ww-pages":
        before = int(record["observed_ww_pages_before"])  # type: ignore[arg-type]
        after = int(record["observed_ww_pages_after"])  # type: ignore[arg-type]
        if not after < before:
            failures.append(
                f"observed {array_name} ww pages did not drop: "
                f"{before} -> {after}"
            )
    elif metric == "useless-bytes":
        if not padded.comm.useless_bytes < base.comm.useless_bytes:
            failures.append(
                f"observed useless bytes did not drop: "
                f"{base.comm.useless_bytes} -> {padded.comm.useless_bytes}"
            )
    else:
        failures.append(f"unknown crosscheck metric {metric!r}")
    return record, failures


def load_baseline(
    path: pathlib.Path = BASELINE_PATH,
) -> Dict[str, Dict[str, object]]:
    if not path.exists():
        return {}
    with open(path) as fh:
        return {k: dict(v) for k, v in json.load(fh).items()}


def write_baseline(
    data: Dict[str, Dict[str, object]], path: pathlib.Path = BASELINE_PATH
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_layout(
    apps: Optional[Sequence[str]] = None,
    nprocs: int = 8,
    json_path: Optional[str] = None,
    crosscheck: bool = False,
    update_baseline: bool = False,
    baseline_path: pathlib.Path = BASELINE_PATH,
) -> int:
    """CLI entry point: advise (all declared apps by default), then
    optionally run the pinned traced crosscheck cells against the
    committed baseline.  Returns a process exit code."""
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    failures = 0
    reports: Dict[str, LayoutReport] = {}
    for name in names:
        try:
            rep = advise(name, nprocs=nprocs)
        except NotImplementedError:
            print(f"{name}: no declared access pattern; skipped")
            continue
        reports[name] = rep
        print(rep.render())

    if json_path:
        doc = {name: rep.to_json_dict() for name, rep in reports.items()}
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"layout report written: {json_path}")

    if crosscheck:
        committed = load_baseline(baseline_path)
        fresh: Dict[str, Dict[str, object]] = {}
        for app_name, dataset, label, array, kind, metric in CROSSCHECK_CELLS:
            key = f"{app_name}/{dataset}/p{nprocs} {array} {kind} @{label}"
            record, cell_failures = crosscheck_cell(
                app_name, dataset, label, array, kind, metric, nprocs
            )
            fresh[key] = record
            status = "ok" if not cell_failures else "FAIL"
            print(f"{status} {key}")
            for msg in cell_failures:
                print(f"  FAIL: {msg}")
                failures += 1
            if key not in committed:
                if not update_baseline:
                    print(
                        f"  FAIL: no committed baseline entry for {key}; "
                        f"run with --update to record it"
                    )
                    failures += 1
            elif committed[key] != record:
                if not update_baseline:
                    print(
                        f"  FAIL: observed numbers drifted from the "
                        f"committed baseline; --update to accept"
                    )
                    print(f"    committed: {committed[key]}")
                    print(f"    current:   {record}")
                    failures += 1
        if update_baseline and not failures:
            write_baseline(fresh, baseline_path)
            print(f"baseline written: {baseline_path}")
    print(f"layout: {len(reports)} app(s), {failures} failure(s)")
    return 1 if failures else 0

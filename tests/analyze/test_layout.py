"""Layout advisor: remedy generation for the two paper archetypes
(block-partitioned Barnes bodies, halo-exchange Jacobi grid), remedy
mechanics, and the committed traced-crosscheck baseline.

The advisor runs are static (interval algebra over declared access
patterns); the expensive traced padded runs are pinned by the committed
``benchmarks/analyze/layout_crosscheck.json`` baseline, whose recorded
numbers are sanity-checked here and re-verified by the CI gate.
"""

from __future__ import annotations

import pytest

from repro.analyze.layout import (
    CROSSCHECK_CELLS,
    LayoutReport,
    Remedy,
    advise,
    load_baseline,
)
from repro.core.shared import PadSpec


@pytest.fixture(scope="module")
def jacobi_report():
    return advise("Jacobi", "1Kx1K", 8, unit_sizes=(8192,))


@pytest.fixture(scope="module")
def barnes_report():
    return advise("Barnes", "16K", 8, unit_sizes=(4096,))


def test_jacobi_hot_cold_split_removes_all_predicted_waste(jacobi_report):
    rem = jacobi_report.best("grid", 8192, "hot-cold-split")
    assert rem is not None
    # Strictly positive predicted conflict-unit reduction...
    assert rem.conflict_units_after < rem.conflict_units_before
    # ...and for Jacobi's halo rows the split is total: no unit mixes
    # hot and cold words any more, so the useless-data bound hits zero.
    assert rem.useless_words_before > 0
    assert rem.useless_words_after == 0
    assert rem.useless_units_after == 0


def test_barnes_pad_partition_removes_all_ww_units(barnes_report):
    rem = barnes_report.best("bodies", 4096, "pad-partition")
    assert rem is not None
    assert rem.ww_units_before > 0
    assert rem.ww_units_after == 0
    assert rem.conflict_units_after < rem.conflict_units_before
    # One unit-aligned segment per processor's contiguous body block.
    assert len(rem.segments) == 8


@pytest.mark.parametrize(
    "report_fixture,array,unit_bytes",
    [("jacobi_report", "grid", 8192), ("barnes_report", "bodies", 4096)],
)
def test_remedy_segments_tile_the_array(
    request, report_fixture, array, unit_bytes
):
    rem = request.getfixturevalue(report_fixture).best(array, unit_bytes)
    assert rem is not None
    cursor = 0
    for start, count in rem.segments:
        assert start == cursor and count > 0
        cursor += count
    plan = rem.plan()
    spec = plan[array]
    assert isinstance(spec, PadSpec)
    assert spec.align_bytes == unit_bytes
    spec.validate(cursor)  # the tiling is a valid PadSpec of this size


def test_advisory_remedy_carries_no_plan():
    rem = Remedy(
        kind="per-proc-blocking",
        array="a",
        unit_bytes=4096,
        segments=(),
        note="re-block the iteration space",
        ww_units_before=3,
        ww_units_after=3,
        useless_words_before=0,
        useless_words_after=0,
        useless_units_before=0,
        useless_units_after=0,
    )
    assert rem.advisory
    with pytest.raises(ValueError):
        rem.plan()
    assert "re-block" in rem.render()


def test_best_prefers_the_largest_conflict_reduction():
    def remedy(kind, after):
        return Remedy(
            kind=kind,
            array="a",
            unit_bytes=4096,
            segments=((0, 4), (4, 4)),
            note="",
            ww_units_before=4,
            ww_units_after=after,
            useless_words_before=0,
            useless_words_after=0,
            useless_units_before=0,
            useless_units_after=0,
        )

    rep = LayoutReport(
        app="x",
        dataset="y",
        nprocs=2,
        remedies=[remedy("weak", 3), remedy("strong", 0)],
    )
    best = rep.best("a", 4096)
    assert best is not None and best.kind == "strong"
    assert rep.best("a", 4096, kind="weak").ww_units_after == 3
    assert rep.best("a", 8192) is None


def test_committed_crosscheck_baseline_is_consistent():
    committed = load_baseline()
    assert committed, "layout crosscheck baseline not committed"
    keys = {
        f"{app}/{dataset}/p8 {array} {kind} @{label}"
        for app, dataset, label, array, kind, _ in CROSSCHECK_CELLS
    }
    assert keys == set(committed)
    for key, rec in committed.items():
        # Padding must never change results...
        assert rec["checksum_equal"] is True, key
        # ...and both the predicted and the observed conflict metric
        # must have strictly dropped under the advisor's plan.
        assert (
            rec["predicted_conflict_units_after"]
            < rec["predicted_conflict_units_before"]
        ), key
        if rec["metric"] == "ww-pages":
            assert (
                rec["observed_ww_pages_after"] < rec["observed_ww_pages_before"]
            ), key
        else:
            assert (
                rec["observed_useless_bytes_after"]
                < rec["observed_useless_bytes_before"]
            ), key

"""Shared experiment-harness machinery.

Every paper experiment is a matrix of (application, dataset) x
(consistency configuration).  ``run_case`` executes one cell and distills
a :class:`CaseResult`; :class:`ResultCache` memoizes cells so the
benchmark suite never runs the same simulation twice; the render helpers
produce the paper-shaped ASCII tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.base import get_app, run_app
from repro.sim.config import SimConfig
from repro.stats.report import RunResult

#: Consistency configurations in paper order.
UNIT_LABELS = ("4K", "8K", "16K", "Dyn")


def config_for(label: str, nprocs: int = 8, **extra) -> SimConfig:
    """The SimConfig for one of the paper's unit labels (or 'seq')."""
    if label == "seq":
        return SimConfig(nprocs=1, **extra)
    if label == "Dyn":
        return SimConfig(nprocs=nprocs, dynamic=True, **extra)
    pages = {"4K": 1, "8K": 2, "16K": 4}[label]
    return SimConfig(nprocs=nprocs, unit_pages=pages, **extra)


@dataclass
class CaseResult:
    """The distilled measurements of one matrix cell."""

    app: str
    dataset: str
    label: str
    time_us: float
    useful_messages: int
    useless_messages: int
    sync_messages: int
    useful_bytes: int
    useless_bytes: int
    piggybacked_useless_bytes: int
    sync_bytes: int
    signature: Dict[int, Tuple[float, float]]
    checksum: Optional[float]
    faults: int
    monitoring_faults: int

    @property
    def total_messages(self) -> int:
        return self.useful_messages + self.useless_messages + self.sync_messages

    @property
    def total_bytes(self) -> int:
        return self.useful_bytes + self.useless_bytes + self.sync_bytes

    @classmethod
    def from_run(cls, res: RunResult) -> "CaseResult":
        c = res.comm
        return cls(
            app=res.app_name,
            dataset=res.dataset,
            label=res.unit_label if res.config.nprocs > 1 else "seq",
            time_us=res.time_us,
            useful_messages=c.useful_messages,
            useless_messages=c.useless_messages,
            sync_messages=c.sync_messages,
            useful_bytes=c.useful_bytes,
            useless_bytes=c.useless_bytes,
            piggybacked_useless_bytes=c.piggybacked_useless_bytes,
            sync_bytes=c.sync_bytes,
            signature=res.signature.normalized(),
            checksum=res.checksum,
            faults=res.stats.faults,
            monitoring_faults=res.stats.monitoring_faults,
        )


def run_case(app_name: str, dataset: str, label: str, **extra) -> CaseResult:
    """Run one (application, dataset, configuration) cell."""
    app = get_app(app_name)
    res = run_app(app, dataset, config_for(label, **extra))
    return CaseResult.from_run(res)


class ResultCache:
    """Process-wide memo of matrix cells (simulations are deterministic,
    so caching is sound)."""

    _cells: Dict[Tuple[str, str, str, tuple], CaseResult] = {}

    @classmethod
    def get(cls, app_name: str, dataset: str, label: str, **extra) -> CaseResult:
        key = (app_name, dataset, label, tuple(sorted(extra.items())))
        if key not in cls._cells:
            cls._cells[key] = run_case(app_name, dataset, label, **extra)
        return cls._cells[key]

    @classmethod
    def clear(cls) -> None:
        cls._cells.clear()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 24) -> str:
    n = max(0, min(width * 3, int(round(fraction * width))))
    return "#" * n


def render_breakdown_table(
    app_name: str,
    dataset: str,
    cells: Dict[str, CaseResult],
) -> str:
    """The paper's Figure-1/2 panel for one application/dataset as text:
    execution time, messages, and data, normalized to the 4 KB cell, with
    the useful (#) / useless (.) / piggybacked (~) breakdown."""
    base = cells["4K"]
    lines = [f"--- {app_name} {dataset} (normalized to 4K) ---"]
    lines.append(f"{'':>5} {'time':>6} | {'messages':>9} (useful+useless+sync) | "
                 f"{'data KB':>8} (useful+piggy+useless)")
    for label in UNIT_LABELS:
        if label not in cells:
            continue
        c = cells[label]
        t = c.time_us / base.time_us
        m = c.total_messages / max(base.total_messages, 1)
        d = c.total_bytes / max(base.total_bytes, 1)
        lines.append(
            f"{label:>5} {t:6.2f} | {m:9.2f}  "
            f"{c.useful_messages:6d}+{c.useless_messages:<6d}+{c.sync_messages:<5d} | "
            f"{d:8.2f}  "
            f"{c.useful_bytes // 1024:5d}+{c.piggybacked_useless_bytes // 1024:<5d}"
            f"+{(c.useless_bytes - c.piggybacked_useless_bytes) // 1024:<5d}"
        )
    return "\n".join(lines)


def render_signature(cells: Dict[str, CaseResult], labels=("4K", "16K")) -> str:
    """Figure-3 panel: the false-sharing signature histogram as text."""
    lines = []
    for label in labels:
        c = cells[label]
        lines.append(f"  [{label}] mean writers = "
                     f"{sum(k * sum(v) for k, v in c.signature.items()):.2f}")
        for writers in sorted(c.signature):
            useful, useless = c.signature[writers]
            lines.append(
                f"    {writers}: {_bar(useful)}{'.' * len(_bar(useless))} "
                f"({useful:.2f} useful, {useless:.2f} useless)"
            )
    return "\n".join(lines)


def write_csv(path, rows: Iterable[dict]) -> None:
    """Write experiment rows as CSV (header from the first row)."""
    rows = list(rows)
    if not rows:
        return
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)

"""Common application scaffolding.

An :class:`Application` bundles:

* named *datasets* (problem sizes).  The keys follow the paper's Table 1
  labels; the actual dimensions are scaled down for simulator runtime
  but chosen to preserve the paper-relevant ratios of access granularity
  to page size (see each module's docstring and DESIGN.md section 2);
* :meth:`setup`, which allocates the shared arrays on a fresh
  :class:`TreadMarks` runtime;
* :meth:`worker`, the per-processor program (must return a float
  checksum on processor 0);
* :meth:`reference`, a pure-numpy sequential implementation producing
  the same checksum -- the correctness oracle.

``run_app(app, dataset, config)`` is the single entry point used by
tests and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.proc import Proc
from repro.core.shared import LayoutPlan, plan_slack_bytes
from repro.core.treadmarks import TreadMarks
from repro.sim.config import SimConfig
from repro.stats.report import RunResult


class Application:
    """Base class for the eight paper applications."""

    #: Application name as used in the paper's tables and figures.
    name: str = ""

    #: dataset label -> parameter dict; subclasses fill this in.
    datasets: Dict[str, dict] = {}

    #: Relative tolerance for checksum comparison across configurations
    #: (lock-order-dependent floating-point reduction order may differ).
    checksum_rtol: float = 1e-5

    def heap_bytes(self, dataset: str) -> int:
        """Shared heap size needed for ``dataset``."""
        raise NotImplementedError

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        """Allocate shared arrays; returns the handle dict passed to
        every worker."""
        raise NotImplementedError

    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        """The per-processor program; returns the checksum."""
        raise NotImplementedError

    def reference(self, dataset: str) -> float:
        """Sequential pure-numpy oracle for the checksum."""
        raise NotImplementedError

    def access_pattern(self, handles: dict, params: dict, nprocs: int):
        """Declare the application's shared-access structure for the
        static analyzer (:mod:`repro.analyze`): an
        :class:`repro.analyze.access.AccessPattern` whose phases mirror
        the worker's barrier epochs.  ``handles`` comes from a
        :meth:`setup` run against a layout probe, so the declared
        element ranges resolve to real heap addresses.

        The contract (checked end-to-end by ``--crosscheck``): every
        ``must`` access happens on every run, inside the barrier epoch
        matching its phase.  Data-dependent accesses are declared with
        ``must=False`` and never contribute to predictions."""
        raise NotImplementedError(
            f"{self.name} declares no access pattern"
        )

    @classmethod
    def declares_access_pattern(cls) -> bool:
        """True when the class overrides :meth:`access_pattern`."""
        return cls.access_pattern is not Application.access_pattern

    # ------------------------------------------------------------------
    def params(self, dataset: str) -> dict:
        """Parameter dict of a dataset label."""
        if dataset not in self.datasets:
            raise KeyError(
                f"{self.name} has no dataset {dataset!r}; "
                f"available: {sorted(self.datasets)}"
            )
        return dict(self.datasets[dataset])

    @staticmethod
    def collect_checksum(proc: Proc, handles: dict, local: float) -> float:
        """Deterministically reduce per-processor checksum partials.

        Uses an out-of-band Python list rather than shared memory so the
        verification artifact does not perturb the measured protocol
        traffic (safe: the engine runs one processor at a time)."""
        partials = handles.setdefault("_partials", {})
        partials[proc.id] = float(local)
        proc.barrier(barrier_id=990)
        return float(sum(partials[p] for p in sorted(partials)))

    @classmethod
    def block_range(cls, total: int, nprocs: int, pid: int) -> tuple:
        """[lo, hi) of a contiguous block partition of ``total`` items."""
        base, extra = divmod(total, nprocs)
        lo = pid * base + min(pid, extra)
        hi = lo + base + (1 if pid < extra else 0)
        return lo, hi


class AppRegistry:
    """Registry of all application classes, keyed by name."""

    _apps: Dict[str, Type[Application]] = {}

    @classmethod
    def register(cls, app_cls: Type[Application]) -> Type[Application]:
        if not app_cls.name:
            raise ValueError(f"{app_cls.__name__} has no name")
        cls._apps[app_cls.name] = app_cls
        return app_cls

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._apps)

    @classmethod
    def get(cls, name: str) -> Application:
        if name not in cls._apps:
            raise KeyError(f"unknown application {name!r}; have {cls.names()}")
        return cls._apps[name]()


def get_app(name: str) -> Application:
    """Instantiate an application by its paper name."""
    return AppRegistry.get(name)


def run_app(
    app: Application, dataset: str, config: SimConfig,
    validate_access: bool = False,
    layout_plan: Optional[LayoutPlan] = None,
) -> RunResult:
    """Run one application dataset under one DSM configuration.

    ``validate_access=True`` attaches a
    :class:`repro.core.validate.BulkAccessValidator` built from the
    app's :meth:`~Application.access_pattern` declaration (resolved
    against the run's real heap layout), so every bulk gather/scatter
    outside the declaration raises instead of running.

    ``layout_plan`` applies a layout-advisor padding plan (see
    :mod:`repro.analyze.layout`): named arrays are re-laid-out into
    aligned segments and the heap is oversized by the plan's slack;
    data, element addressing, and per-processor access order are
    unchanged, so checksums must match the unpadded run exactly."""
    params = app.params(dataset)
    tmk = TreadMarks(
        config,
        heap_bytes=app.heap_bytes(dataset) + plan_slack_bytes(layout_plan),
        app_name=app.name,
        dataset=dataset,
        layout_plan=layout_plan,
    )
    handles = app.setup(tmk, dataset)
    if validate_access:
        from repro.core.validate import BulkAccessValidator

        tmk.access_validator = BulkAccessValidator(
            app.access_pattern(handles, params, config.nprocs)
        )

    def body(proc: Proc) -> float:
        return app.worker(proc, handles, params)

    return tmk.run(body)

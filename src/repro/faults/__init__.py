"""repro.faults -- the fault-injection lab.

A seeded, deterministic model of an unreliable network (message drop,
duplication, bounded reorder, latency jitter, node stragglers) layered
onto the simulator's message ledger, plus the timeout/ack/retransmit
machinery that recovers from it and a chaos-sweep gate that proves the
recovery is *transparent*: under any fault plan with retries enabled,
checksums and every useful-data counter are bit-identical to the
fault-free golden baseline -- only time and fault-cost counters grow.

The model is *shadow-cost*: injected delays accrue in a per-processor
side ledger and are folded into the reported clocks after the run, so
the live discrete-event schedule (and hence every protocol decision)
is exactly the fault-free one.  Each message's fate is drawn from an
RNG keyed by ``(plan.seed, msg_id)`` -- see :func:`message_rng` -- so
fates are independent of how many random draws other messages consumed.

Entry points: :class:`FaultPlan` (serialized through
``SimConfig.fault_plan``), :class:`FaultInjector` (a
``Network`` observer wired up by :class:`repro.core.treadmarks.TreadMarks`),
and ``python -m repro.faults`` (single faulty runs and ``--chaos-sweep``).
"""

from repro.faults.channel import (
    Delivery,
    DroppedMessageError,
    ReliableChannel,
    XmitPhase,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    ANY_CLASS,
    KNOWN_CLASSES,
    FaultPlan,
    FaultSpec,
    StragglerWindow,
    message_rng,
    parse_plan,
)

# The chaos gate pulls in the bench layer (and through it the apps and
# the runtime, which itself imports this package), so its names resolve
# lazily to keep ``import repro.faults`` cycle-free for the simulator.
_GATE_NAMES = (
    "FAULT_FIELDS",
    "INVARIANT_FIELDS",
    "CellVerdict",
    "ChaosReport",
    "run_chaos",
)


def __getattr__(name: str) -> object:
    if name in _GATE_NAMES:
        from repro.faults import gate

        value: object = getattr(gate, name)
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ANY_CLASS",
    "KNOWN_CLASSES",
    "Delivery",
    "DroppedMessageError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ReliableChannel",
    "StragglerWindow",
    "XmitPhase",
    "message_rng",
    "parse_plan",
]

"""Command-line front end of the protocol zoo.

    python -m repro protocols --list
    python -m repro protocols --smoke
    python -m repro protocols --smoke --apps Jacobi,TSP --label 4K

``--list`` dumps the registry.  ``--smoke`` is the cross-protocol
correctness gate used by CI: it runs the named applications (smallest
paper dataset) under **every** registered protocol and requires each
run's checksum to equal the committed tm-lrc golden checksum exactly --
all four protocols implement release consistency for data-race-free
programs, so final data is protocol-invariant; any checksum drift means
a coherence bug, not a cost-model change.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.bench import golden
from repro.bench.harness import run_case
from repro.protocols import all_protocols
from repro.sim.config import DEFAULT_PROTOCOL


def render_list() -> str:
    """The registry as a two-column table."""
    infos = all_protocols()
    width = max(len(i.name) for i in infos)
    lines = ["registered consistency protocols:"]
    for info in infos:
        marker = "*" if info.name == DEFAULT_PROTOCOL else " "
        lines.append(f" {marker} {info.name:<{width}}  {info.description}")
    lines.append("(* = default; select with SimConfig.protocol / the")
    lines.append(" --protocols flag of `python -m repro.bench protocols`)")
    return "\n".join(lines)


def run_smoke(
    apps: List[str], label: str, golden_dir: pathlib.Path
) -> List[str]:
    """Run every protocol on every app; returns failure lines (empty =
    pass).  Prints one status line per cell as it goes."""
    failures: List[str] = []
    for app in apps:
        dataset = golden.SMALL_DATASETS.get(app)
        if dataset is None:
            failures.append(
                f"{app}: unknown application "
                f"(have {sorted(golden.SMALL_DATASETS)})"
            )
            continue
        entry = golden.load_app_golden(golden_dir, app)
        expected = (entry or {}).get(dataset, {}).get(label, {}).get("checksum")
        if expected is None:
            # No committed baseline: anchor on a fresh tm-lrc run so the
            # cross-protocol invariance is still enforced.
            expected = run_case(app, dataset, label).checksum
            src = "tm-lrc run"
        else:
            src = "tm-lrc golden"
        for info in all_protocols():
            extra = {} if info.name == DEFAULT_PROTOCOL else {
                "protocol": info.name
            }
            case = run_case(app, dataset, label, **extra)
            ok = case.checksum == expected
            status = "ok " if ok else "FAIL"
            print(
                f"  [{status}] {app}/{dataset}@{label} {info.name}: "
                f"checksum {case.checksum!r} vs {src} {expected!r}"
            )
            if not ok:
                failures.append(
                    f"{app}/{dataset}@{label} {info.name}: checksum "
                    f"{case.checksum!r} != {src} {expected!r}"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro protocols",
        description="Consistency-protocol zoo: registry and smoke gate.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_protocols",
        help="list the registered protocols",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the cross-protocol checksum gate (exit 1 on drift)",
    )
    parser.add_argument(
        "--apps",
        type=str,
        default="Jacobi,TSP",
        metavar="APP[,APP]",
        help="applications for --smoke (default: %(default)s)",
    )
    parser.add_argument(
        "--label",
        type=str,
        default="4K",
        choices=("4K", "8K", "16K", "Dyn"),
        help="consistency configuration for --smoke (default: %(default)s)",
    )
    parser.add_argument(
        "--golden-dir",
        type=pathlib.Path,
        default=golden.GOLDEN_DIR,
        help="golden baseline directory (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if not args.list_protocols and not args.smoke:
        parser.error("nothing to do: give --list and/or --smoke")

    if args.list_protocols:
        print(render_list())
    if args.smoke:
        apps = [a for a in args.apps.split(",") if a]
        failures = run_smoke(apps, args.label, args.golden_dir)
        if failures:
            print(
                f"protocol smoke FAILED ({len(failures)} mismatch(es)):",
                file=sys.stderr,
            )
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        n = len(apps) * len(all_protocols())
        print(f"protocol smoke OK: {n} runs, checksums protocol-invariant")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro`` -- the package's front door.

Dispatches to the subsystem CLIs::

    python -m repro bench table1 --jobs 4      # == python -m repro.bench
    python -m repro trace Jacobi 1Kx1K ...     # == python -m repro.trace
    python -m repro faults --chaos-sweep       # == python -m repro.faults
    python -m repro analyze --lint             # == python -m repro.analyze
    python -m repro protocols --list           # == python -m repro.protocols
    python -m repro farm submit figure1        # == python -m repro.farm

``python -m repro`` alone (or ``--help``) lists the subcommands.
Everything after the subcommand is handed to that CLI verbatim, so each
subsystem's own ``--help`` works: ``python -m repro bench --help``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional


def _bench(argv: List[str]) -> int:
    from repro.bench.cli import main

    return main(argv)


def _trace(argv: List[str]) -> int:
    from repro.trace.cli import main

    return main(argv)


def _faults(argv: List[str]) -> int:
    from repro.faults.cli import main

    return main(argv)


def _analyze(argv: List[str]) -> int:
    from repro.analyze.cli import main

    return main(argv)


def _protocols(argv: List[str]) -> int:
    from repro.protocols.cli import main

    return main(argv)


def _farm(argv: List[str]) -> int:
    from repro.farm.cli import main

    return main(argv)


#: Subcommand -> (runner, one-line description).
SUBCOMMANDS: Dict[str, tuple] = {
    "bench": (_bench, "regenerate the paper's tables and figures; "
                      "golden regression gate"),
    "trace": (_trace, "protocol event tracing, timeline export, "
                      "happens-before race detector"),
    "faults": (_faults, "fault-injection lab: faulty runs and the "
                        "chaos-sweep invariant gate"),
    "analyze": (_analyze, "determinism lint and static access-pattern "
                          "analysis with dynamic crosscheck"),
    "protocols": (_protocols, "consistency-protocol zoo: list the registry, "
                              "cross-protocol checksum smoke gate"),
    "farm": (_farm, "distributed sweep farm: submit cells, run "
                    "work-stealing workers, serve results read-only"),
}


def _usage() -> str:
    lines = [
        "usage: python -m repro SUBCOMMAND [args...]",
        "",
        "subcommands:",
    ]
    for name, (_, desc) in SUBCOMMANDS.items():
        lines.append(f"  {name:8} {desc}")
    lines.append("")
    lines.append("run `python -m repro SUBCOMMAND --help` for each "
                 "subcommand's options")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    entry: Optional[Callable] = None
    if name in SUBCOMMANDS:
        entry = SUBCOMMANDS[name][0]
    if entry is None:
        print(f"unknown subcommand {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    return entry(rest)


if __name__ == "__main__":
    sys.exit(main())

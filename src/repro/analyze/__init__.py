"""repro.analyze -- static analysis for the reproduction.

Two pillars:

* the **determinism linter** (:mod:`repro.analyze.detlint`): an
  AST-based pass over simulation-ordered code that flags nondeterminism
  hazards -- unsorted set iteration, wall-clock reads, unseeded global
  RNG use, ``id()``/``hash()``-order dependence, and float accumulation
  into the integer counters behind the golden regression gate.  Every
  subsystem in this repository (trace, bench cache, golden gate, chaos
  sweep) leans on bit-reproducibility; the linter turns that contract
  from convention into a CI gate;

* the **static access-pattern analyzer** (:mod:`repro.analyze.access`,
  :mod:`repro.analyze.predict`): abstract interpretation of each
  application's *declared* shared-array accesses, computing per-phase
  per-processor page write sets and predicting the write-write
  false-sharing pages -- and a useless-data lower bound -- at 4/8/16 KB
  consistency units, before a single simulated cycle runs.
  :mod:`repro.analyze.crosscheck` closes the loop by confirming every
  predicted page against the dynamic trace attribution of a real run.

CLI: ``python -m repro.analyze --lint | --predict <app> | --crosscheck``
(also reachable as ``python -m repro analyze ...``).
"""

from repro.analyze.detlint import lint_paths
from repro.analyze.predict import predict
from repro.analyze.report import Finding

__all__ = ["Finding", "lint_paths", "predict"]

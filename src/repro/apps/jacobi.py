"""Jacobi: iterative relaxation on a square grid (Section 5.5).

Each processor owns a band of rows.  Per iteration every processor reads
the boundary rows of its neighbours' bands plus its own band, computes
the 4-point average into a private scratch array, and (after a barrier)
writes its band back.  Only the boundary rows are ever communicated.

Paper behaviour being reproduced:

* the pages containing a boundary row are entirely written, so at the
  unit size that exactly holds one row there is **no useless data and no
  useless messages** ("there are never useless messages, because even if
  there is false sharing at the boundary, there is always true sharing
  on those pages as well");
* when the unit grows beyond one row, interior rows colocated with the
  boundary row travel as **piggybacked useless data**, causing the very
  slight degradation of Figure 2;
* per-dataset: the ``1Kx1K``-shaped grid has 4 KB rows (useless data
  appears at 8 and 16 KB), the ``2Kx2K``-shaped grid 8 KB rows (useless
  data appears only at 16 KB).

Datasets are scaled in the row *count* (fewer bands of work) but keep
the paper's row-size-to-page ratios; see DESIGN.md section 2.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: Flops charged per grid point per iteration (add*3 + mul).
FLOPS_PER_POINT = 4


def _initial_grid(rows: int, cols: int) -> np.ndarray:
    """Deterministic non-trivial initial condition."""
    i = np.arange(rows, dtype=np.float32)[:, None]
    j = np.arange(cols, dtype=np.float32)[None, :]
    return (np.sin(i * 0.13) * np.cos(j * 0.07)).astype(np.float32) * 100.0


def _jacobi_step(grid: np.ndarray) -> np.ndarray:
    """One sequential Jacobi sweep (edges held fixed)."""
    new = grid.copy()
    new[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    return new


@AppRegistry.register
class Jacobi(Application):
    """Jacobi relaxation with row-band partitioning."""

    name = "Jacobi"

    datasets = {
        # Paper 1Kx1K: rows of 1024 float32 = 4 KB = exactly one page.
        "1Kx1K": {"rows": 96, "cols": 1024, "iters": 4},
        # Paper 2Kx2K: rows of 2048 float32 = 8 KB = two pages.
        "2Kx2K": {"rows": 96, "cols": 2048, "iters": 4},
        # Full 512x512 grid, unscaled (all rows): rows of 512 float32 =
        # 2 KB = half a page, so adjacent partitions share boundary
        # pages -- the paper's false-sharing regime at the 4 KB unit.
        # Only in the ``--full`` golden matrix (bulk fast path speed).
        "512x512": {"rows": 512, "cols": 512, "iters": 4},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return p["rows"] * p["cols"] * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {"grid": tmk.array("grid", (p["rows"], p["cols"]), "float32")}

    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        grid = handles["grid"]
        rows, cols, iters = params["rows"], params["cols"], params["iters"]
        lo, hi = self.block_range(rows, proc.nprocs, proc.id)

        # Distributed initialization: each owner writes its own band, as
        # the TreadMarks applications do (avoids a whole-dataset
        # migration from processor 0 at startup).
        grid.write_rows(proc, lo, _initial_grid(rows, cols)[lo:hi])
        proc.barrier()

        for _ in range(iters):
            # Read the halo: own band plus the neighbours' boundary rows.
            r0 = max(lo - 1, 0)
            r1 = min(hi + 1, rows)
            halo = grid.read_rows(proc, r0, r1)
            proc.compute(flops=(hi - lo) * cols * FLOPS_PER_POINT)

            new = halo.copy()
            if halo.shape[0] > 2:
                new[1:-1, 1:-1] = 0.25 * (
                    halo[:-2, 1:-1]
                    + halo[2:, 1:-1]
                    + halo[1:-1, :-2]
                    + halo[1:-1, 2:]
                )
            band = new[lo - r0 : hi - r0]
            # Global edge rows stay fixed.
            if lo == 0:
                band = band.copy()
                band[0] = halo[0]
            if hi == rows:
                band = band.copy()
                band[-1] = halo[-1]
            proc.barrier()  # everyone has read before anyone writes
            grid.write_rows(proc, lo, band)
            proc.barrier()

        total = float(np.abs(grid.read_rows(proc, lo, hi)).astype(np.float64).sum())
        return self.collect_checksum(proc, handles, total)

    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        grid = _initial_grid(p["rows"], p["cols"])
        for _ in range(p["iters"]):
            grid = _jacobi_step(grid)
        return float(np.abs(grid).sum())

    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: bands of whole rows, read epochs and write
        epochs separated by barriers (see :meth:`worker`)."""
        from repro.analyze.access import AccessPattern

        grid = handles["grid"]
        rows = params["rows"]
        ranges = [self.block_range(rows, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            ph.write_rows(grid, p, lo, hi)
        for it in range(params["iters"]):
            rd = pat.phase(f"iter{it}:halo-read")
            for p, (lo, hi) in enumerate(ranges):
                rd.read_rows(grid, p, max(lo - 1, 0), min(hi + 1, rows))
            wr = pat.phase(f"iter{it}:band-write")
            for p, (lo, hi) in enumerate(ranges):
                wr.write_rows(grid, p, lo, hi)
        fin = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            fin.read_rows(grid, p, lo, hi)
        return pat

"""Word-granularity diffs (the multiple-writer protocol's unit of data).

A *twin* is a copy of a consistency unit taken at the first write in an
interval; at the end of the interval the twin is compared word-by-word
with the modified unit to produce a :class:`Diff` -- exactly the
twin-and-diff scheme of Carter et al. used by TreadMarks.

Diffs are stored as (word-index, word-value) numpy arrays.  The modelled
wire size is run-length encoded, as in TreadMarks: each maximal run of
consecutive modified words costs one (offset, length) header plus its
data words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per run header in the run-length wire encoding (offset + length).
RUN_HEADER_BYTES = 8

#: Fixed per-diff framing bytes (unit id, interval id, run count).
DIFF_HEADER_BYTES = 16

WORD = 4  # bytes per instrumentation word


@dataclass(frozen=True)
class Diff:
    """A record of the words an interval modified within one unit.

    ``idx`` holds word offsets (int32) *within the unit*, strictly
    increasing; ``values`` holds the post-write word values (uint32 raw
    bit patterns).
    """

    unit: int
    idx: np.ndarray
    values: np.ndarray
    wire_bytes: int

    @property
    def nwords(self) -> int:
        """Number of modified words carried."""
        return int(self.idx.shape[0])

    @property
    def data_bytes(self) -> int:
        """Payload bytes excluding run/framing headers."""
        return self.nwords * WORD


def _wire_bytes(idx: np.ndarray) -> int:
    """Run-length encoded wire size of a diff with the given offsets."""
    n = idx.shape[0]
    if n == 0:
        return DIFF_HEADER_BYTES
    runs = 1 + int(np.count_nonzero(np.diff(idx) != 1))
    return DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + n * WORD


def create_diff(unit: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Compare a twin against the current unit contents.

    Both arrays must be uint32 views of the same length (one consistency
    unit).  Returns a possibly-empty :class:`Diff`.
    """
    if twin.shape != current.shape:
        raise ValueError(f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    changed = np.nonzero(twin != current)[0]
    idx = changed.astype(np.int32)
    values = current[changed].copy()
    return Diff(unit=unit, idx=idx, values=values, wire_bytes=_wire_bytes(idx))


def merge_diffs(diffs: "list[Diff]") -> Diff:
    """Coalesce several diffs of the *same unit from the same writer*
    (in interval order) into one diff carrying the latest value of each
    word.

    This reproduces TreadMarks' lazy diffing: the real system keeps one
    twin per page across intervals and computes a single diff covering
    all of a writer's modifications when first requested, so a reader
    never pays for the same writer's intermediate versions of a word
    ("diff accumulation" is avoided for single-writer pages).  Our
    simulator closes intervals eagerly, so we coalesce at fetch time
    instead -- the wire contents and sizes are identical.
    """
    if not diffs:
        raise ValueError("merge_diffs needs at least one diff")
    unit = diffs[0].unit
    for d in diffs[1:]:
        if d.unit != unit:
            raise ValueError(f"cannot merge diffs of units {unit} and {d.unit}")
    if len(diffs) == 1:
        return diffs[0]
    idx = np.concatenate([d.idx for d in diffs])
    values = np.concatenate([d.values for d in diffs])
    # Keep the LAST occurrence of every word offset (latest interval
    # wins): np.unique on the reversed stream returns first occurrences,
    # which are last occurrences of the original order.
    rev_idx = idx[::-1]
    uniq, first_pos = np.unique(rev_idx, return_index=True)
    merged_vals = values[::-1][first_pos]
    uniq = uniq.astype(np.int32)
    return Diff(
        unit=unit, idx=uniq, values=merged_vals, wire_bytes=_wire_bytes(uniq)
    )


def apply_diff(diff: Diff, unit_words: np.ndarray) -> None:
    """Patch ``diff`` into a uint32 view of the target unit, in place."""
    if diff.nwords == 0:
        return
    if int(diff.idx[-1]) >= unit_words.shape[0]:
        raise IndexError(
            f"diff touches word {int(diff.idx[-1])} beyond unit of "
            f"{unit_words.shape[0]} words"
        )
    unit_words[diff.idx] = diff.values

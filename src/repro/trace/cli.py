"""Command-line tracer:

    python -m repro.trace <app> <dataset> <unit> [--out t.json] [...]

Runs one (application, dataset, consistency-unit) cell with tracing
enabled, then:

* writes the Chrome-trace timeline (``--out``; open in chrome://tracing
  or https://ui.perfetto.dev) and/or the raw JSONL event log
  (``--jsonl``),
* runs the happens-before race detector over the access trace
  (disable with ``--no-races``),
* prints the per-page false-sharing attribution report (``--top N``).

Application names are case-insensitive; ``small`` / ``large`` are
accepted as dataset aliases for an application's smallest / largest
dataset by heap size.  Units are ``4K``, ``8K``, ``16K``, or ``Dyn``
(case-insensitive).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps.base import AppRegistry, get_app, run_app
from repro.bench.harness import config_for
from repro.trace.attribution import attribute_pages, render_attribution
from repro.trace.export import write_chrome_trace, write_jsonl
from repro.trace.hb import detect_races

UNIT_ALIASES = {"4k": "4K", "8k": "8K", "16k": "16K", "dyn": "Dyn"}


def resolve_app(name: str) -> str:
    """Case-insensitive application lookup."""
    for registered in AppRegistry.names():
        if registered.lower() == name.lower():
            return registered
    raise SystemExit(
        f"unknown application {name!r}; available: {AppRegistry.names()}"
    )


def resolve_dataset(app, dataset: str) -> str:
    """Exact dataset label, or the 'small'/'large' alias."""
    if dataset in app.datasets:
        return dataset
    alias = dataset.lower()
    if alias in ("small", "large"):
        by_size = sorted(app.datasets, key=app.heap_bytes)
        return by_size[0] if alias == "small" else by_size[-1]
    raise SystemExit(
        f"{app.name} has no dataset {dataset!r}; available: "
        f"{sorted(app.datasets)} (or 'small'/'large')"
    )


def resolve_unit(unit: str) -> str:
    label = UNIT_ALIASES.get(unit.lower())
    if label is None:
        raise SystemExit(
            f"unknown unit {unit!r}; use one of 4K, 8K, 16K, Dyn"
        )
    return label


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Trace one simulated DSM run: timeline export, "
        "race check, and per-page false-sharing attribution.",
    )
    parser.add_argument("app", help="application name (case-insensitive)")
    parser.add_argument(
        "dataset", help="dataset label, or 'small'/'large'"
    )
    parser.add_argument("unit", help="consistency unit: 4K, 8K, 16K, or Dyn")
    parser.add_argument(
        "--out", default=None, help="write Chrome-trace JSON here"
    )
    parser.add_argument(
        "--jsonl", default=None, help="write the raw event log here (JSONL)"
    )
    parser.add_argument(
        "--no-races",
        action="store_true",
        help="skip the happens-before race check",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="pages to show in the attribution report (default 10)",
    )
    parser.add_argument(
        "--nprocs", type=int, default=8, help="simulated processors (default 8)"
    )
    args = parser.parse_args(argv)

    app = get_app(resolve_app(args.app))
    dataset = resolve_dataset(app, args.dataset)
    label = resolve_unit(args.unit)
    config = config_for(label, nprocs=args.nprocs, trace=True)

    result = run_app(app, dataset, config)
    trace = result.trace
    assert trace is not None, "run was configured with trace=True"

    print(
        f"{app.name} {dataset} [{label}] on {config.nprocs} procs: "
        f"time={result.time_us / 1e6:.4f}s  "
        f"messages={result.comm.total_messages} "
        f"({result.comm.useless_messages} useless)  "
        f"events={len(trace.events)}"
    )

    if args.out:
        doc = write_chrome_trace(args.out, trace)
        print(f"wrote {args.out} ({len(doc['traceEvents'])} trace events)")
    if args.jsonl:
        n = write_jsonl(args.jsonl, trace.events)
        print(f"wrote {args.jsonl} ({n} events)")

    rc = 0
    if not args.no_races:
        report = detect_races(trace.events, config.nprocs, trace.layout)
        print(report.render())
        if not report.race_free:
            rc = 1

    rows = attribute_pages(trace)
    print(render_attribution(rows, top=args.top))
    return rc


if __name__ == "__main__":
    sys.exit(main())

"""Protocol event tracing, timeline export, and race detection.

The trace subsystem is the observability layer over the simulated DSM:

* :mod:`repro.trace.events` / :mod:`repro.trace.recorder` -- typed,
  opt-in structured event records (``SimConfig.trace=True``) emitted
  from observer hooks in the sim substrate and the protocol core;
* :mod:`repro.trace.export` -- Chrome-trace/Perfetto JSON (one track
  per simulated processor, message flow arrows) and JSONL export;
* :mod:`repro.trace.hb` -- a vector-clock happens-before race detector
  replaying the access trace;
* :mod:`repro.trace.attribution` -- a per-page false-sharing report
  ranking pages by useless messages/bytes, tied to allocation labels;
* :mod:`repro.trace.cli` -- ``python -m repro.trace <app> <dataset>
  <unit>``.

Tracing is *zero-cost with respect to the simulation*: the hooks only
observe state the protocol already computed, so a traced run yields
bit-identical simulated times and message counts to an untraced run
(asserted in ``tests/trace/test_zero_cost.py``).
"""

from repro.trace.events import (
    AccessEvent,
    BarrierArriveEvent,
    BarrierDepartEvent,
    DiffApplyEvent,
    DiffCreateEvent,
    FaultEvent,
    GroupBuildEvent,
    GroupDissolveEvent,
    GroupFetchEvent,
    LockAcquireEvent,
    LockReleaseEvent,
    MessageEvent,
    ParkEvent,
    ResumeEvent,
    TraceEvent,
    TwinEvent,
    event_to_dict,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.trace.hb import Race, RaceReport, detect_races
from repro.trace.attribution import PageAttribution, attribute_pages, render_attribution

__all__ = [
    "TraceEvent",
    "AccessEvent",
    "FaultEvent",
    "TwinEvent",
    "DiffCreateEvent",
    "DiffApplyEvent",
    "MessageEvent",
    "LockAcquireEvent",
    "LockReleaseEvent",
    "BarrierArriveEvent",
    "BarrierDepartEvent",
    "GroupBuildEvent",
    "GroupFetchEvent",
    "GroupDissolveEvent",
    "ParkEvent",
    "ResumeEvent",
    "event_to_dict",
    "TraceRecorder",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "Race",
    "RaceReport",
    "detect_races",
    "PageAttribution",
    "attribute_pages",
    "render_attribution",
]

"""The fault injection layer.

One :class:`FaultInjector` per faulted run, registered as a message
observer on :class:`repro.sim.network.Network` (after the trace
recorder, so timelines show the original message before its injected
faults).  For every protocol message it:

1. derives the message's private RNG from ``(plan.seed, msg_id)``,
2. drives the :class:`~repro.faults.channel.ReliableChannel` state
   machine for the ``(src, dst)`` link,
3. mirrors every injected copy (timed-out retransmissions, duplicate
   deliveries) into the message ledger as
   :attr:`~repro.sim.network.MessageClass.RETRANSMIT` records,
4. bumps the ``retransmissions`` / ``duplicate_deliveries`` /
   ``timeout_stalls`` counters on :class:`repro.stats.counters.ProtocolStats`,
5. accrues the injected delay to the *shadow overhead* of the waiting
   processor.

Shadow-cost model
-----------------
Injected delays are charged to a per-processor side ledger
(:attr:`FaultInjector.overhead_us`) that the runtime adds to the
processor clocks *after* the run, never to the live simulation clocks.
The discrete-event schedule -- lock-grant order, barrier composition,
diff-fetch contents -- is therefore byte-for-byte the fault-free
schedule, which is exactly what makes the chaos invariant gate sound:
under any plan with retries enabled, application checksums and every
useful-data counter must be bit-identical to the fault-free golden
baseline, and only message/byte/time counters may grow.  (DESIGN.md,
"Fault lab", spells out why this also matches the protocol argument:
an LRC diff re-request is idempotent, so a reliable retransmission
layer cannot change protocol outcomes, only their cost.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.faults.channel import Delivery, ReliableChannel
from repro.faults.plan import FaultPlan, FaultSpec, message_rng
from repro.sim.config import SimConfig
from repro.sim.network import MessageClass, MessageRecord, Network
from repro.stats.counters import ProtocolStats


class FaultInjector:
    """Observer-side implementation of one fault plan."""

    def __init__(
        self,
        plan: FaultPlan,
        config: SimConfig,
        network: Network,
        stats: ProtocolStats,
        trace: Optional[Any] = None,
    ) -> None:
        plan.validate(config.nprocs)
        self.plan = plan
        self.config = config
        self.network = network
        self.stats = stats
        self.trace = trace
        self.overhead_us: List[float] = [0.0] * config.nprocs
        """Per-processor shadow delay; added to the processor clocks by
        the runtime once the run finished."""

        self.channels: Dict[Tuple[int, int], ReliableChannel] = {}
        self.stragglers_applied = 0
        self.reordered_deliveries = 0
        self.jittered_deliveries = 0
        self._finalized = False
        self._specs: Dict[MessageClass, Optional[FaultSpec]] = {
            klass: plan.spec_for(klass.value)
            for klass in MessageClass
            if klass is not MessageClass.RETRANSMIT
        }

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------
    def on_message(
        self,
        rec: MessageRecord,
        wire_time_us: float,
        waiter: Optional[int] = None,
    ) -> None:
        """React to one recorded message (called by ``Network.record``).

        Injected ledger copies are RETRANSMIT-class and skipped here, so
        re-entrant notification terminates by construction.
        """
        if rec.klass is MessageClass.RETRANSMIT:
            return
        spec = self._specs.get(rec.klass)
        if spec is None or not spec.active:
            return
        rng = message_rng(self.plan.seed, rec.msg_id)
        channel = self._channel(rec.src, rec.dst)
        # DroppedMessageError propagates out of Network.record into the
        # protocol layer: the run aborts, and the bench harness reports
        # the cell as a graceful failure.
        delivery = channel.transmit(rec.msg_id, rec.klass.value, spec, rng)
        self._account(rec, delivery, waiter)

    # ------------------------------------------------------------------
    def _channel(self, src: int, dst: int) -> ReliableChannel:
        ch = self.channels.get((src, dst))
        if ch is None:
            ch = self.channels[(src, dst)] = ReliableChannel(src, dst, self.plan)
        return ch

    def _account(
        self, rec: MessageRecord, delivery: Delivery, waiter: Optional[int]
    ) -> None:
        pid = waiter if waiter is not None else rec.dst
        stats = self.stats

        # Timed-out retransmissions: the sender stalls through each
        # timeout, then re-sends a full copy.
        n_timeouts = delivery.attempts - 1
        stats.timeout_stalls += n_timeouts
        stats.retransmissions += delivery.retransmissions
        stats.duplicate_deliveries += delivery.duplicate_deliveries
        self.overhead_us[pid] += delivery.timeout_stall_us

        prev_offset = 0.0
        for i, offset in enumerate(delivery.resend_offsets_us):
            resend_ts = rec.send_time_us + offset
            self._mirror(rec, resend_ts)
            if self.trace is not None:
                self.trace.on_retransmit(
                    proc=rec.src,
                    ts=resend_ts,
                    msg_id=rec.msg_id,
                    klass=rec.klass.value,
                    attempt=i + 2,
                    stall_us=offset - prev_offset if i < n_timeouts else 0.0,
                )
                if i >= n_timeouts:
                    # The tail offset past the timeout count is the
                    # ack-loss resend: delivered data arriving again as
                    # a duplicate at the receiver.
                    self.trace.on_fault_injected(
                        proc=rec.dst,
                        ts=resend_ts,
                        msg_id=rec.msg_id,
                        klass=rec.klass.value,
                        fault="dup",
                        delay_us=0.0,
                    )
            prev_offset = offset
        if n_timeouts and self.trace is not None:
            self.trace.on_fault_injected(
                proc=rec.src,
                ts=rec.send_time_us,
                msg_id=rec.msg_id,
                klass=rec.klass.value,
                fault="drop",
                delay_us=delivery.timeout_stall_us,
            )

        # Receiver-side CPU cost of discarding each duplicate copy.
        dup_cpu = delivery.duplicate_deliveries * self.config.msg_cpu_us
        self.overhead_us[rec.dst] += dup_cpu
        if delivery.net_dup:
            self._mirror(rec, rec.send_time_us + delivery.timeout_stall_us)
            if self.trace is not None:
                self.trace.on_fault_injected(
                    proc=rec.dst,
                    ts=rec.send_time_us,
                    msg_id=rec.msg_id,
                    klass=rec.klass.value,
                    fault="dup",
                    delay_us=0.0,
                )

        # Latency perturbations delay the waiter, not the sender.
        if delivery.jitter_us > 0.0:
            self.jittered_deliveries += 1
            self.overhead_us[pid] += delivery.jitter_us
            if self.trace is not None:
                self.trace.on_fault_injected(
                    proc=pid,
                    ts=rec.send_time_us,
                    msg_id=rec.msg_id,
                    klass=rec.klass.value,
                    fault="jitter",
                    delay_us=delivery.jitter_us,
                )
        if delivery.reorder_us > 0.0:
            self.reordered_deliveries += 1
            self.overhead_us[pid] += delivery.reorder_us
            if self.trace is not None:
                self.trace.on_fault_injected(
                    proc=pid,
                    ts=rec.send_time_us,
                    msg_id=rec.msg_id,
                    klass=rec.klass.value,
                    fault="reorder",
                    delay_us=delivery.reorder_us,
                )

    def _mirror(self, rec: MessageRecord, ts: float) -> None:
        """Ledger entry for one injected copy of ``rec``.  Re-notifies
        observers (the trace draws the copy's flow arrow); this injector
        ignores RETRANSMIT-class records, so there is no recursion."""
        self.network.record(
            rec.src,
            rec.dst,
            MessageClass.RETRANSMIT,
            rec.payload_bytes,
            ts,
        )

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, proc_end_times_us: List[float]) -> None:
        """Apply node-level straggler windows.

        A window charges ``duration_us * factor`` to its processor's
        shadow overhead iff the processor was still running when the
        window opened (``start_us`` before the processor's finish time).
        Called once by the runtime after all processors finished.
        """
        if self._finalized:
            raise RuntimeError("FaultInjector.finalize called twice")
        self._finalized = True
        for win in self.plan.stragglers:
            if win.proc >= len(proc_end_times_us):
                continue
            if win.start_us < proc_end_times_us[win.proc]:
                self.overhead_us[win.proc] += win.duration_us * win.factor
                self.stragglers_applied += 1
                if self.trace is not None:
                    self.trace.on_fault_injected(
                        proc=win.proc,
                        ts=win.start_us,
                        msg_id=-1,
                        klass="",
                        fault="straggler",
                        delay_us=win.duration_us * win.factor,
                    )

    def summary(self) -> Dict[str, float]:
        """Run-level fault accounting for :attr:`RunResult.extra`."""
        return {
            "fault_overhead_us": float(sum(self.overhead_us)),
            "fault_links": float(len(self.channels)),
            "fault_jittered": float(self.jittered_deliveries),
            "fault_reordered": float(self.reordered_deliveries),
            "fault_stragglers": float(self.stragglers_applied),
        }

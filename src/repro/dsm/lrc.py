"""The per-processor lazy release consistency protocol engine.

One :class:`LrcProc` per simulated processor holds:

* a private copy of the shared heap (:class:`AddressSpace`),
* a vector clock of the intervals it has seen,
* per-unit *pending write notices* -- invalidations received at acquires
  and barriers that have not yet been satisfied by fetching diffs,
* the twins of units written in the current interval.

Life cycle of a write, exactly as in TreadMarks:

1. the first write to a unit in an interval makes a *twin* (and pays a
   memory-protection operation);
2. at the next synchronization the interval *closes*: each twinned unit
   is compared to the current contents to create a word-granularity diff,
   and (proc, interval, unit) write notices are published;
3. an acquire (or barrier departure) delivers to the acquirer all write
   notices it has not seen, invalidating the named units;
4. the first access to an invalid unit faults; the faulting processor
   requests diffs from every concurrent writer of the unit -- requests to
   the same writer are combined, distinct writers answer in parallel --
   applies them in a happens-before-compatible order, and revalidates.

The fetch granularity (one unit, or a dynamic page group) is delegated to
an aggregation strategy from :mod:`repro.dsm.aggregation`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.dsm.address_space import AddressSpace, SharedHeapLayout
from repro.dsm.diff import Diff, apply_diff, create_diff, merge_diffs
from repro.dsm.intervals import IntervalStore, WriteNotice
from repro.dsm.vc import VectorClock
from repro.sim.clock import Clock
from repro.sim.config import SimConfig
from repro.sim.network import MessageClass, Network
from repro.stats.counters import ProtocolStats
from repro.stats.words import WordTracker

if TYPE_CHECKING:
    from repro.dsm.aggregation import Aggregator

#: Fixed bytes of a diff request message plus per-requested-diff entry.
REQUEST_BASE_BYTES = 8
REQUEST_ENTRY_BYTES = 12


class LrcProc:
    """Consistency state and protocol actions of one processor."""

    def __init__(
        self,
        pid: int,
        layout: SharedHeapLayout,
        config: SimConfig,
        store: IntervalStore,
        network: Network,
        stats: ProtocolStats,
        clock: Clock,
        credit,
    ) -> None:
        self.pid = pid
        self.layout = layout
        self.config = config
        self.store = store
        self.network = network
        self.stats = stats
        self.clock = clock
        self.space = AddressSpace(layout)
        self.tracker = WordTracker(layout.nwords, credit)
        self.vc = VectorClock(config.nprocs)
        self.pending: Dict[int, List[WriteNotice]] = {}
        self.twins: Dict[int, np.ndarray] = {}
        self._twin_persist = set()
        """Units whose (logical) twin survives from an earlier interval:
        in TreadMarks a twin persists across releases until the unit is
        invalidated or its diff is garbage collected, so re-dirtying such
        a unit in the next interval costs nothing.  Our simulator closes
        intervals eagerly for correctness but charges twin costs on the
        real system's schedule."""
        self.unsent_notices = 0
        """Write notices created since this processor's last barrier
        arrival (models the arrival-message payload)."""
        self.aggregator: Optional["Aggregator"] = None  # wired by the runtime
        self.trace = None
        """Optional :class:`repro.trace.recorder.TraceRecorder` attached
        by the runtime.  All hooks below are observer-only: they never
        advance the clock or touch protocol state."""

    # ------------------------------------------------------------------
    # Application access path
    # ------------------------------------------------------------------
    def read_words(self, word0: int, nwords: int) -> np.ndarray:
        """Shared read of a word range: fault if needed, resolve word
        usefulness, charge access time, return the raw words."""
        self._check_range(word0, nwords)
        self.aggregator.ensure_valid(word0, nwords)
        if self.trace is not None:
            self.trace.on_access(self.pid, self.clock.now, "read", word0, nwords)
        self.tracker.on_read(word0, nwords)
        self.clock.advance(
            self.config.region_op_us + nwords * self.config.word_access_us
        )
        return self.space.read_words(word0, nwords)

    def write_words(self, word0: int, values: np.ndarray) -> None:
        """Shared write of a word range: fault if needed, twin the
        covered units on first write, install the values."""
        nwords = int(values.shape[0])
        self._check_range(word0, nwords)
        self.aggregator.ensure_valid(word0, nwords)
        for unit in self.layout.units_of_range(word0, nwords):
            if unit not in self.twins:
                self._make_twin(unit)
        if self.trace is not None:
            self.trace.on_access(self.pid, self.clock.now, "write", word0, nwords)
        self.tracker.on_write(word0, nwords)
        self.space.write_words(word0, values)
        self.clock.advance(
            self.config.region_op_us + nwords * self.config.word_access_us
        )

    def _check_range(self, word0: int, nwords: int) -> None:
        if word0 < 0 or nwords <= 0 or word0 + nwords > self.layout.nwords:
            raise IndexError(
                f"shared access [{word0}, {word0 + nwords}) outside heap "
                f"of {self.layout.nwords} words"
            )

    # ------------------------------------------------------------------
    # Twinning and interval closing
    # ------------------------------------------------------------------
    def _make_twin(self, unit: int) -> None:
        self.twins[unit] = self.space.unit_view(unit).copy()
        if unit in self._twin_persist:
            # The real system's twin from an earlier interval is still in
            # place (no invalidation arrived, no diff was requested):
            # re-dirtying the unit is free.
            return
        self._twin_persist.add(unit)
        self.stats.twins += 1
        self.stats.mprotects += 1  # remove write protection
        if self.trace is not None:
            self.trace.on_twin(self.pid, self.clock.now, unit)
        self.clock.advance(
            self.config.mprotect_us
            + self.layout.unit_bytes * self.config.twin_byte_us
        )

    def close_interval(self) -> None:
        """End the current interval (called at every synchronization
        operation, on the processor's own thread): record per-unit diffs
        and publish the interval's write notices.

        The simulator materializes the diff data here so a later fetch
        can be served from any point in the run, but the *cost* of diff
        creation is charged lazily at fetch time (see :meth:`fetch`), as
        in TreadMarks, where a release only queues write notices and the
        word-compare scan happens when a diff is first requested."""
        if not self.twins:
            return
        diffs: Dict[int, Diff] = {}
        for unit in sorted(self.twins):
            diffs[unit] = create_diff(
                unit, self.twins[unit], self.space.unit_view(unit)
            )
        self.vc.tick(self.pid)
        self.store.close_interval(self.pid, self.vc, diffs)
        self.stats.intervals_closed += 1
        self.stats.write_notices_sent += len(diffs)
        self.unsent_notices += len(diffs)
        self.twins.clear()

    def at_sync_point(self) -> None:
        """Hook run on the processor's own thread immediately before it
        parks at any synchronization operation."""
        self.close_interval()
        self.aggregator.on_sync()

    # ------------------------------------------------------------------
    # Invalidation (runs on the scheduler thread while parked)
    # ------------------------------------------------------------------
    def apply_notices_upto(self, new_vc: VectorClock) -> tuple:
        """Receive write notices for every interval covered by ``new_vc``
        that this processor has not seen; invalidate their units.

        Returns ``(cost_us, payload_bytes, n_notices)`` so the caller can
        charge the wake-up time and size the carrying message.
        """
        newly_invalid = 0
        n = 0
        for interval, unit in self.store.notices_between(self.vc, new_vc):
            if interval.proc == self.pid:
                raise AssertionError("received a notice for own interval")
            lst = self.pending.get(unit)
            if lst is None:
                lst = self.pending[unit] = []
            if not lst:
                newly_invalid += 1
            lst.append(
                WriteNotice(
                    proc=interval.proc,
                    index=interval.index,
                    unit=unit,
                    commit_seq=interval.commit_seq,
                )
            )
            n += 1
            self._twin_persist.discard(unit)
            self.aggregator.on_invalidate(unit)
        self.vc.join(new_vc)
        cost = newly_invalid * self.config.mprotect_us
        self.stats.mprotects += newly_invalid
        return cost, n * self.config.write_notice_bytes, n

    # ------------------------------------------------------------------
    # Fault service
    # ------------------------------------------------------------------
    def fetch(self, units: Sequence[int]) -> None:
        """Service an access miss by fetching the pending diffs of
        ``units`` (the faulting unit plus whatever the aggregation
        strategy bundled with it).

        Requests to the same writer are combined into one exchange;
        distinct writers are contacted in parallel, so the stall is the
        maximum (not the sum) of the per-writer response times --- the
        aggregation advantage of Sections 3 and 4.
        """
        by_writer: Dict[int, List[WriteNotice]] = {}
        for unit in units:
            for notice in self.pending.get(unit, ()):
                by_writer.setdefault(notice.proc, []).append(notice)
        if not by_writer:
            raise AssertionError(f"fetch with nothing pending: units={units}")

        now = self.clock.now
        fault_id = len(self.stats.fault_records)

        # Coalesce each writer's diffs as TreadMarks' lazy diffing would:
        # group the globally commit-ordered notices into maximal runs of
        # consecutive (writer, unit) entries and merge each run into one
        # diff (repro.dsm.diff.merge_diffs).  Restricting merging to
        # *consecutive* runs keeps the apply order a linear extension of
        # happens-before even when another writer's interval falls
        # between two intervals of the same writer (migratory data under
        # locks), where merging across would resurrect stale words.
        all_notices = sorted(
            (nt for lst in by_writer.values() for nt in lst),
            key=lambda x: x.commit_seq,
        )
        runs: List[List[WriteNotice]] = []
        for nt in all_notices:
            if runs and runs[-1][-1].proc == nt.proc and runs[-1][-1].unit == nt.unit:
                runs[-1].append(nt)
            else:
                runs.append([nt])

        per_writer_runs: Dict[int, List[Diff]] = {w: [] for w in by_writer}
        to_apply: List[tuple] = []  # (commit order position, writer, diff)
        writer_diff_cost: Dict[int, float] = {w: 0.0 for w in by_writer}
        for position, run in enumerate(runs):
            d = merge_diffs(
                [self.store.get(nt.proc, nt.index).diff_for(nt.unit) for nt in run]
            )
            per_writer_runs[run[0].proc].append(d)
            to_apply.append((position, run[0].proc, d))
            # Lazy diffing: the writer scans the unit when a span is
            # first requested (the cost sits on the response path) and
            # caches the result; later requests for the same span are
            # served from the diff cache.
            cache_key = (run[0].proc, run[0].unit, run[0].index, run[-1].index)
            if cache_key not in self.store.diff_scan_cache:
                self.store.diff_scan_cache.add(cache_key)
                writer_diff_cost[run[0].proc] += (
                    self.layout.unit_bytes * self.config.diff_create_byte_us
                )
                self.stats.diffs_created += 1
                self.stats.diff_words_created += d.nwords
                if self.trace is not None:
                    self.trace.on_diff_create(
                        run[0].proc, self.pid, now, run[0].unit, d.nwords
                    )

        # Build the exchanges: normally one per writer carrying all that
        # writer's runs; with combine_requests disabled (ablation), one
        # per (writer, run).
        exchange_plans: List[tuple] = []  # (writer, [run diffs], n_notices)
        if self.config.combine_requests:
            for writer in sorted(by_writer):
                exchange_plans.append(
                    (writer, per_writer_runs[writer], len(by_writer[writer]))
                )
        else:
            for _pos, writer, d in to_apply:
                exchange_plans.append((writer, [d], 1))

        stall = 0.0
        exchange_ids = []
        reply_of_run: Dict[int, int] = {}  # id(diff) -> reply msg id
        for writer, run_diffs, n_notices in exchange_plans:
            ex = self.network.new_exchange(self.pid, writer, fault_id)
            exchange_ids.append(ex)
            req_bytes = REQUEST_BASE_BYTES + REQUEST_ENTRY_BYTES * n_notices
            # Both legs of the exchange stall the faulting processor, so
            # injected delivery faults (repro.faults) charge their delays
            # to it, whichever direction the perturbed copy travels.
            req = self.network.record(
                self.pid, writer, MessageClass.DIFF_REQUEST, req_bytes, now, ex,
                waiter=self.pid,
            )
            reply_bytes = sum(d.wire_bytes for d in run_diffs)
            reply_words = sum(d.nwords for d in run_diffs)
            reply = self.network.record(
                writer, self.pid, MessageClass.DIFF_REPLY, reply_bytes, now, ex,
                waiter=self.pid,
            )
            reply.words_carried = reply_words
            for d in run_diffs:
                reply_of_run[id(d)] = reply.msg_id
            self.network.close_exchange(ex, req.msg_id, reply.msg_id)
            response_time = (
                self.config.msg_cost_us(req_bytes)
                + self.config.diff_service_us
                + writer_diff_cost[writer]
                + self.config.msg_cost_us(reply_bytes)
            )
            if self.config.parallel_fetch:
                stall = max(stall, response_time)
            else:
                stall += response_time

        # Per-exchange CPU time at the requester (send + receive): wire
        # latencies overlap across writers, CPU work does not.
        stall += 2 * self.config.msg_cpu_us * len(exchange_plans)

        # Apply in global commit order.
        apply_cost = 0.0
        for _pos, writer, d in to_apply:
            msg_id = reply_of_run[id(d)]
            w0, _ = self.layout.unit_word_range(d.unit)
            apply_diff(d, self.space.unit_view(d.unit))
            if d.nwords:
                self.tracker.mark(d.idx.astype(np.int64) + w0, msg_id)
            apply_cost += d.data_bytes * self.config.diff_apply_byte_us
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += d.nwords
            if self.trace is not None:
                pages, page_words = (), ()
                if d.nwords:
                    pg, cnt = np.unique(
                        (d.idx.astype(np.int64) + w0) // self.layout.words_per_page,
                        return_counts=True,
                    )
                    pages = tuple(int(p) for p in pg)
                    page_words = tuple(int(c) for c in cnt)
                self.trace.on_diff_apply(
                    self.pid, now, d.unit, writer, d.nwords, msg_id,
                    pages, page_words,
                )

        for unit in units:
            self.pending.pop(unit, None)

        self.stats.mprotects += len(units)
        cost = (
            self.config.fault_trap_us
            + len(units) * self.config.mprotect_us
            + stall
            + apply_cost
        )
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=now,
                fault_id=fault_id,
                units=tuple(units),
                writers=len(by_writer),
                exchange_ids=tuple(exchange_ids),
                stall_us=stall,
                cost_us=cost,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=now,
            units=tuple(units),
            writers=len(by_writer),
            exchange_ids=tuple(exchange_ids),
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)

    def monitoring_fault(self, unit: int) -> None:
        """A dynamic-aggregation access-tracking fault: the unit's data is
        already current, so no messages are exchanged; only the trap and
        re-protection costs are paid (the Section-4 monitoring overhead)."""
        self.stats.mprotects += 1
        cost = self.config.fault_trap_us + self.config.mprotect_us
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=self.clock.now,
                fault_id=len(self.stats.fault_records),
                units=(unit,),
                writers=0,
                exchange_ids=(),
                stall_us=0.0,
                cost_us=cost,
                monitoring=True,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=self.clock.now,
            units=(unit,),
            writers=0,
            exchange_ids=(),
            monitoring=True,
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)

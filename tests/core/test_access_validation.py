"""Runtime validation of ``access_pattern()`` declarations vs bulk calls.

The bulk ports were written against each application's
:meth:`~repro.apps.base.Application.access_pattern` declaration; the
:class:`repro.core.validate.BulkAccessValidator` enforces that contract
at runtime.  Three guarantees are pinned here:

* every application's actual bulk gathers/scatters stay inside its own
  declaration (the full matrix runs clean under validation),
* validation is purely observational (identical counters on/off), and
* a deliberately mis-declared application *fails*: the validator is not
  vacuous.
"""

import random

import numpy as np
import pytest

from repro.analyze.access import Access, AccessPattern
from repro.apps.base import get_app, run_app
from repro.bench.cache import cell_seed
from repro.bench.golden import GOLDEN_FIELDS, SMALL_DATASETS
from repro.bench.harness import CaseResult, config_for
from repro.core.validate import AccessDeclarationError, BulkAccessValidator

APPS = sorted(SMALL_DATASETS)


def _validated_run(app, dataset: str, label: str = "4K", **kwargs):
    config = config_for(label)
    seed = cell_seed(app.name, dataset, config)
    np.random.seed(seed)  # detlint: ok(global-random)
    random.seed(seed)  # detlint: ok(global-random)
    return run_app(app, dataset, config, **kwargs)


@pytest.mark.parametrize("app_name", APPS)
def test_declared_apps_pass_validation(app_name):
    """Every app's bulk accesses lie inside its declared pattern."""
    res = _validated_run(
        get_app(app_name), SMALL_DATASETS[app_name], validate_access=True
    )
    assert res.time_us > 0


def test_validation_is_observational():
    """Attaching the validator changes no counter, clock, or checksum."""
    app, ds = "Water", SMALL_DATASETS["Water"]
    plain = CaseResult.from_run(_validated_run(get_app(app), ds))
    checked = CaseResult.from_run(
        _validated_run(get_app(app), ds, validate_access=True)
    )
    for field in GOLDEN_FIELDS:
        assert getattr(plain, field) == getattr(checked, field), field


def test_misdeclared_app_raises():
    """An app whose declaration omits accesses it actually performs is
    rejected at the first undeclared bulk call."""
    water_cls = type(get_app("Water"))

    class MisdeclaredWater(water_cls):
        def access_pattern(self, handles, params, nprocs):
            pattern = super().access_pattern(handles, params, nprocs)
            for phase in pattern.phases:
                phase.accesses = [
                    a
                    for a in phase.accesses
                    if not (a.proc == 0 and a.op == "write")
                ]
            return pattern

    with pytest.raises(AccessDeclarationError, match=r"proc 0"):
        _validated_run(
            MisdeclaredWater(), SMALL_DATASETS["Water"], validate_access=True
        )


# ----------------------------------------------------------------------
# Validator unit behavior
# ----------------------------------------------------------------------
def _toy_validator():
    pattern = AccessPattern(app="toy")
    ph = pattern.phase("p0")
    ph.accesses.append(Access(proc=0, op="read", word0=100, nwords=64))
    ph.accesses.append(Access(proc=0, op="read", word0=164, nwords=36))
    return BulkAccessValidator(pattern)


def test_validator_accepts_ranges_inside_merged_intervals():
    v = _toy_validator()
    # [100, 200) after merging the two adjacent declarations.
    v.check(0, "read", np.array([100, 136, 150]), 50)


def test_validator_rejects_range_past_declaration():
    v = _toy_validator()
    with pytest.raises(AccessDeclarationError, match=r"\[150, 250\)"):
        v.check(0, "read", np.array([100, 150]), 100)


def test_validator_rejects_range_before_declaration():
    v = _toy_validator()
    with pytest.raises(AccessDeclarationError):
        v.check(0, "read", np.array([96]), 8)


def test_validator_rejects_undeclared_op():
    v = _toy_validator()
    with pytest.raises(AccessDeclarationError, match="no write accesses"):
        v.check(0, "write", np.array([100]), 4)


def test_validator_ignores_empty_calls():
    v = _toy_validator()
    v.check(0, "write", np.array([], dtype=np.int64), 4)
    v.check(1, "read", np.array([0]), 0)

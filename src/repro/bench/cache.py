"""On-disk result cache for sweep cells.

A *cell* is one (application, dataset, SimConfig) simulation.  Cells are
deterministic, so their distilled :class:`~repro.bench.harness.CaseResult`
can be memoized on disk and reused across processes and invocations --
this is what makes repeated figure/table regeneration and the golden
regression gate cheap.

Keying
------
A cell's cache key hashes four things:

* the **code version** -- a digest over every ``repro`` source file, so
  any change to the simulator, protocol, or applications invalidates the
  entire cache (a stale hit can never mask a behavior change);
* the **application name** and **dataset label**;
* the **canonical config JSON** (:meth:`SimConfig.canonical_json`), so
  two calls that resolve to the same configuration share one entry and
  two configs differing in any field -- including ``**extra`` overrides
  like ``max_group_pages`` -- can never alias.

Entries are one JSON file per cell under ``repro_results/cache/`` with a
human-readable ``<app>-<dataset>-<label>-<key>.json`` name.  Corrupt,
truncated, or stale-schema files are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import TYPE_CHECKING, Optional

from repro.sim.config import SimConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness imports us)
    from repro.bench.harness import CaseResult

#: Bump when the cache entry layout changes; old entries become misses.
CACHE_SCHEMA = 1

#: Default cache root, relative to the working directory (the CLI and
#: tests pass explicit paths; this matches the repo layout).
DEFAULT_CACHE_DIR = pathlib.Path("repro_results") / "cache"

_SRC_ROOT = pathlib.Path(__file__).resolve().parents[1]

_code_version_cache: dict = {}


def code_version(src_root: Optional[pathlib.Path] = None) -> str:
    """Digest of every ``repro`` source file (path + contents).

    Any edit anywhere in the package changes the digest, invalidating
    all cached cells.  That is intentionally coarse: simulations are
    cheap relative to the cost of trusting a stale number.
    """
    root = pathlib.Path(src_root) if src_root is not None else _SRC_ROOT
    memoize = src_root is None  # sources don't change under a live process
    if memoize and "default" in _code_version_cache:
        return _code_version_cache["default"]
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()[:16]
    if memoize:
        _code_version_cache["default"] = digest
    return digest


def cell_key(app: str, dataset: str, config: SimConfig) -> str:
    """Stable cache key of one sweep cell under the current code."""
    blob = "\n".join(
        [str(CACHE_SCHEMA), code_version(), app, dataset, config.canonical_json()]
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def cell_seed(app: str, dataset: str, config: SimConfig) -> int:
    """Deterministic per-cell RNG seed (32-bit).

    Derived only from the cell identity -- *not* the code version -- so
    seeds are stable across commits and identical whether the cell runs
    serially in the parent process or fanned out to a pool worker.
    """
    blob = "\n".join(["seed", app, dataset, config.canonical_json()])
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:4], "big")


class DiskCache:
    """One-file-per-cell JSON cache with hit/miss accounting."""

    def __init__(self, root: pathlib.Path = DEFAULT_CACHE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, app: str, dataset: str, label: str, key: str) -> pathlib.Path:
        safe = f"{app}-{dataset}-{label}".replace("/", "_").replace(" ", "_")
        return self.root / f"{safe}-{key}.json"

    def load(
        self, app: str, dataset: str, label: str, config: SimConfig
    ) -> "Optional[CaseResult]":
        """Return the cached :class:`CaseResult`, or None on a miss."""
        from repro.bench.harness import CaseResult

        key = cell_key(app, dataset, config)
        path = self._path(app, dataset, label, key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
                raise ValueError("stale cache entry")
            result = CaseResult.from_json_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(
        self, app: str, dataset: str, label: str, config: SimConfig,
        result: "CaseResult",
    ) -> pathlib.Path:
        """Write one cell's result; returns the file path."""
        key = cell_key(app, dataset, config)
        path = self._path(app, dataset, label, key)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "code_version": code_version(),
            "app": app,
            "dataset": dataset,
            "label": label,
            "config": config.to_dict(),
            "result": result.to_json_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1) + "\n")
        tmp.replace(path)  # atomic: concurrent readers never see a torn file
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                n += 1
        return n

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0

"""The consistency-protocol interface and registry.

A *protocol* is a recipe for building the per-processor consistency
engines of one simulated run.  :class:`repro.dsm.lrc.LrcProc` defines the
contract structurally -- the substrate (engine, sync manager, aggregation
strategies, fault lab) only ever calls the methods named in
:class:`ConsistencyProtocol` -- so alternative protocols subclass
``LrcProc`` and override the pieces that differ:

* ``close_interval``  -- what happens at a release (lazy notice queueing,
  eager flush to a home, eager push to all sharers, nothing),
* ``apply_notices_upto`` -- what an acquire invalidates,
* ``fetch`` -- how an access miss is serviced (multi-writer diff gather,
  single round-trip to a home/owner, never).

Protocols register a :class:`ProtocolInfo` under a short name; the
runtime (:class:`repro.core.treadmarks.TreadMarks`) resolves
``SimConfig.protocol`` through :func:`get_protocol` and calls the
protocol's ``build`` hook to construct the processor array.  The hook
owns any cross-processor wiring (peer lists, shared directories).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.dsm.lrc import LrcProc

if TYPE_CHECKING:
    import numpy as np

    from repro.dsm.address_space import SharedHeapLayout
    from repro.dsm.intervals import IntervalStore
    from repro.dsm.vc import VectorClock
    from repro.sim.clock import Clock
    from repro.sim.config import SimConfig
    from repro.sim.network import Network
    from repro.stats.counters import ProtocolStats

#: ``credit(msg_id, nwords)`` -- the word-usefulness callback the runtime
#: hands every processor (resolves words as useful on first read).
CreditFn = Callable[[int, int], None]

#: ``build(layout, config, store, network, stats, clocks, credit)`` ->
#: the per-processor engines, index == pid.  The hook performs all
#: protocol-internal wiring; the runtime attaches trace recorders and
#: aggregation strategies afterwards.
BuildFn = Callable[
    [
        "SharedHeapLayout",
        "SimConfig",
        "IntervalStore",
        "Network",
        "ProtocolStats",
        "List[Clock]",
        CreditFn,
    ],
    List[LrcProc],
]


@runtime_checkable
class ConsistencyProtocol(Protocol):
    """Structural contract between the substrate and a protocol engine.

    Everything the engine, sync manager, aggregators, and application
    shim call on a per-processor protocol object.  ``LrcProc`` (and thus
    every subclass) satisfies it; the class exists as documentation and
    for static checking of new implementations, not for inheritance.
    """

    pid: int

    def read_words(
        self, word0: int, nwords: int
    ) -> "np.ndarray[Any, np.dtype[Any]]":
        """Shared read (faulting + usefulness + access cost)."""
        ...

    def write_words(
        self, word0: int, values: "np.ndarray[Any, np.dtype[Any]]"
    ) -> None:
        """Shared write (faulting + write capture + access cost)."""
        ...

    def at_sync_point(self) -> None:
        """Run on the processor's own thread before it parks at any
        synchronization operation (release semantics live here)."""
        ...

    def apply_notices_upto(
        self, new_vc: "VectorClock"
    ) -> Tuple[float, int, int]:
        """Advance this processor's knowledge to ``new_vc`` (acquire
        semantics); returns ``(cost_us, payload_bytes, n_notices)``."""
        ...

    def fetch(self, units: Sequence[int]) -> None:
        """Service an access miss on ``units``."""
        ...

    def monitoring_fault(self, unit: int) -> None:
        """Pay for a data-less access-tracking fault (dynamic mode)."""
        ...


@dataclass(frozen=True)
class ProtocolInfo:
    """One registered consistency protocol."""

    name: str
    """Registry key, the value of ``SimConfig.protocol``."""

    description: str
    """One-line summary shown by ``python -m repro protocols --list``."""

    build: BuildFn
    """Constructor hook for the per-processor engines."""


_REGISTRY: Dict[str, ProtocolInfo] = {}


def register(info: ProtocolInfo) -> ProtocolInfo:
    """Add a protocol to the registry (module-import time); returns it."""
    if info.name in _REGISTRY:
        raise ValueError(f"protocol {info.name!r} registered twice")
    _REGISTRY[info.name] = info
    return info


def get_protocol(name: str) -> ProtocolInfo:
    """Look up a registered protocol by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; registered: {protocol_names()}"
        ) from None


def protocol_names() -> Tuple[str, ...]:
    """The registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_protocols() -> List[ProtocolInfo]:
    """All registered protocols, sorted by name."""
    return [_REGISTRY[name] for name in protocol_names()]


def build_uniform(proc_cls: Type[LrcProc]) -> BuildFn:
    """A ``build`` hook for protocols with no cross-processor wiring:
    one ``proc_cls`` instance per pid, constructed like ``LrcProc``."""

    def build(
        layout: "SharedHeapLayout",
        config: "SimConfig",
        store: "IntervalStore",
        network: "Network",
        stats: "ProtocolStats",
        clocks: "List[Clock]",
        credit: CreditFn,
    ) -> List[LrcProc]:
        return [
            proc_cls(
                pid=pid,
                layout=layout,
                config=config,
                store=store,
                network=network,
                stats=stats,
                clock=clocks[pid],
                credit=credit,
            )
            for pid in range(config.nprocs)
        ]

    return build

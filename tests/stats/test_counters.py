"""Protocol counters and fault records."""

import pytest

from repro.stats.counters import ProtocolStats


def test_record_fault_assigns_ids():
    s = ProtocolStats()
    r0 = s.record_fault(proc=0, time_us=1.0, units=(0,), writers=1, exchange_ids=(0,))
    r1 = s.record_fault(proc=1, time_us=2.0, units=(1,), writers=2, exchange_ids=(1, 2))
    assert (r0.fault_id, r1.fault_id) == (0, 1)
    assert s.faults == 2
    assert s.monitoring_faults == 0


def test_monitoring_fault_counted_separately():
    s = ProtocolStats()
    s.record_fault(proc=0, time_us=0.0, units=(3,), writers=0,
                   exchange_ids=(), monitoring=True)
    assert s.faults == 0
    assert s.monitoring_faults == 1
    assert s.fault_records[0].monitoring


def test_counters_start_zero():
    s = ProtocolStats()
    assert s.twins == 0
    assert s.diffs_created == 0
    assert s.mprotects == 0
    assert s.lock_acquires == 0
    assert s.barriers == 0
    assert s.fault_records == []

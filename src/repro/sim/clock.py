"""Per-processor simulated clocks.

Each simulated processor owns a :class:`Clock`, advanced by the DSM layer
(protocol costs), the network layer (stalls), and the application layer
(compute charges).  The clock is the source of simulated-time ordering for
the scheduler in :mod:`repro.sim.engine`.
"""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing simulated clock, in microseconds."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now: float = float(start)

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` (must be >= 0); return the
        new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by {delta_us} us")
        self.now += delta_us
        return self.now

    def advance_to(self, t_us: float) -> float:
        """Advance the clock to at least ``t_us`` (a stall until an event
        at absolute time ``t_us``); never moves the clock backwards."""
        if t_us > self.now:
            self.now = t_us
        return self.now

    def reset(self) -> None:
        """Reset to time zero (used between harness runs)."""
        self.now = 0.0

    def __repr__(self) -> str:
        return f"Clock({self.now:.1f}us)"

"""Home-based lazy release consistency (HLRC).

Every consistency unit has a statically assigned *home* node
(``unit % nprocs``) whose copy is kept authoritative: at each release the
writer eagerly creates its diffs and flushes them to the homes
(one-way :data:`~repro.sim.network.MessageClass.DIFF_FLUSH` messages the
releaser does not stall on), and an access miss is serviced by one
round trip per home that ships the *whole current unit* -- in contrast to
TreadMarks LRC, where the faulting processor gathers word-granularity
diffs from every concurrent writer.

The trade-off reproduced here (Zhou, Iftode & Li, OSDI '96 "home-based"
vs "homeless" LRC):

* faults are a single exchange regardless of the number of writers, so
  the per-fault message count no longer scales with write-write false
  sharing -- the signature collapses to one exchange per home;
* but diff creation is eager (charged at every release even if nobody
  ever faults on the data) and fetches ship full units, so *useless
  data* grows with the unit size much faster than under tm-lrc's diffs.

Home copies are kept coherent the same way the simulator applies diffs
anywhere: word-granularity patches applied in global commit order, which
is a linear extension of happens-before, so data-race-free applications
observe identical values under every protocol (the checksum-invariance
property asserted in ``tests/integration/test_protocol_zoo.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.dsm.diff import DIFF_HEADER_BYTES, apply_diff
from repro.dsm.intervals import WriteNotice
from repro.dsm.lrc import REQUEST_BASE_BYTES, REQUEST_ENTRY_BYTES, LrcProc
from repro.dsm.vc import VectorClock
from repro.protocols.base import CreditFn, ProtocolInfo, register
from repro.sim.network import MessageClass

if TYPE_CHECKING:
    from repro.dsm.address_space import SharedHeapLayout
    from repro.dsm.intervals import IntervalStore
    from repro.sim.clock import Clock
    from repro.sim.config import SimConfig
    from repro.sim.network import Network
    from repro.stats.counters import ProtocolStats


class HomeLrcProc(LrcProc):
    """One processor under home-based LRC."""

    #: All processors of the run (index == pid), wired by the build hook.
    peers: "List[HomeLrcProc]"

    def home(self, unit: int) -> int:
        """The unit's statically assigned home node."""
        return unit % self.config.nprocs

    # ------------------------------------------------------------------
    # Release path: eager diff + flush to the homes
    # ------------------------------------------------------------------
    def close_interval(self) -> None:
        if not self.twins:
            return
        units = sorted(self.twins)
        super().close_interval()
        interval = self.store.get(self.pid, self.vc[self.pid])
        now = self.clock.now
        cost = 0.0
        for unit in units:
            d = interval.diff_for(unit)
            # Eager diff creation: the word-compare scan runs at release
            # (the defining HLRC cost shift -- tm-lrc defers it to the
            # first fetch and skips it entirely for never-fetched data).
            key = (self.pid, unit, interval.index, interval.index)
            if key not in self.store.diff_scan_cache:
                self.store.diff_scan_cache.add(key)
                cost += self.layout.unit_bytes * self.config.diff_create_byte_us
                self.stats.diffs_created += 1
                self.stats.diff_words_created += d.nwords
                if self.trace is not None:
                    self.trace.on_diff_create(
                        self.pid, self.pid, now, unit, d.nwords
                    )
            home = self.home(unit)
            if home == self.pid:
                continue  # the writer is the home: its copy is the master
            msg = self.network.record(
                self.pid, home, MessageClass.DIFF_FLUSH,
                d.wire_bytes, now, waiter=None,
            )
            msg.words_carried = d.nwords
            cost += self.config.msg_cpu_us  # send-side CPU; no stall
            peer = self.peers[home]
            apply_diff(d, peer.space.unit_view(unit))
            twin = peer.twins.get(unit)
            if twin is not None:
                # Patch the home's live twin too, else its next diff
                # would re-publish our words as its own writes.
                apply_diff(d, twin)
            if d.nwords:
                w0, _ = self.layout.unit_word_range(unit)
                peer.tracker.mark(d.idx.astype(np.int64) + w0, msg.msg_id)
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += d.nwords
            self.stats.diff_flushes += 1
            if self.trace is not None:
                self.trace.on_diff_flush(
                    self.pid, home, now, unit, d.nwords, msg.msg_id
                )
        self.clock.advance(cost)

    # ------------------------------------------------------------------
    # Acquire path: own-home units never invalidate (flushes keep them
    # current); everything else invalidates as under LRC.
    # ------------------------------------------------------------------
    def apply_notices_upto(self, new_vc: VectorClock) -> Tuple[float, int, int]:
        # The base vectorized application with one extra per-interval
        # mask: units homed here are skipped before any pending/persist/
        # aggregation side effect (the flushes keep them current), while
        # ``n`` still counts every notice (the payload carries them all).
        assert self.aggregator is not None
        newly_invalid = 0
        n = 0
        pending = self.pending
        pending_n = self.pending_n
        persist = self._twin_persist
        invalidate_many = self.aggregator.on_invalidate_many
        nprocs = self.config.nprocs
        pid = self.pid
        store = self.store
        own_vc = self.vc
        for proc in range(nprocs):
            for interval in store.intervals_between(
                proc, own_vc[proc], new_vc[proc]
            ):
                if interval.proc == pid:
                    raise AssertionError("received a notice for own interval")
                ua = interval.units_arr
                if not ua.shape[0]:
                    continue
                n += ua.shape[0]
                ku = ua[ua % nprocs != pid]  # home(unit) != self.pid
                if not ku.shape[0]:
                    continue
                newly_invalid += int((pending_n[ku] == 0).sum())
                pending_n[ku] += 1
                persist[ku] = False
                invalidate_many(ku)
                iproc, iidx, iseq = (
                    interval.proc,
                    interval.index,
                    interval.commit_seq,
                )
                for unit in ku.tolist():
                    lst = pending.get(unit)
                    if lst is None:
                        lst = pending[unit] = []
                    lst.append(
                        WriteNotice(
                            proc=iproc, index=iidx, unit=unit, commit_seq=iseq
                        )
                    )
        self.vc.join(new_vc)
        cost = newly_invalid * self.config.mprotect_us
        self.stats.mprotects += newly_invalid
        return cost, n * self.config.write_notice_bytes, n

    # ------------------------------------------------------------------
    # Fault service: one whole-unit round trip per home
    # ------------------------------------------------------------------
    def fetch(self, units: Sequence[int]) -> None:
        by_home: Dict[int, List[int]] = {}
        for unit in units:
            if self.pending.get(unit):
                by_home.setdefault(self.home(unit), []).append(unit)
        if not by_home:
            raise AssertionError(f"fetch with nothing pending: units={units}")

        now = self.clock.now
        fault_id = len(self.stats.fault_records)
        stall = 0.0
        apply_cost = 0.0
        exchange_ids = []
        for home in sorted(by_home):
            hunits = sorted(by_home[home])
            ex = self.network.new_exchange(self.pid, home, fault_id)
            exchange_ids.append(ex)
            req_bytes = REQUEST_BASE_BYTES + REQUEST_ENTRY_BYTES * len(hunits)
            req = self.network.record(
                self.pid, home, MessageClass.DIFF_REQUEST, req_bytes, now, ex,
                waiter=self.pid,
            )
            # The home replies with the full current unit contents (HLRC
            # has no per-writer diffs to ship at fault time).
            reply_bytes = len(hunits) * (
                self.layout.unit_bytes + DIFF_HEADER_BYTES
            )
            reply = self.network.record(
                home, self.pid, MessageClass.DIFF_REPLY, reply_bytes, now, ex,
                waiter=self.pid,
            )
            reply.words_carried = len(hunits) * self.layout.words_per_unit
            self.network.close_exchange(ex, req.msg_id, reply.msg_id)
            response_time = (
                self.config.msg_cost_us(req_bytes)
                + self.config.diff_service_us
                + self.config.msg_cost_us(reply_bytes)
            )
            if self.config.parallel_fetch:
                stall = max(stall, response_time)
            else:
                stall += response_time
            for unit in hunits:
                w0, w1 = self.layout.unit_word_range(unit)
                self.space.unit_view(unit)[:] = self.peers[home].space.unit_view(unit)
                self.tracker.mark(np.arange(w0, w1, dtype=np.int64), reply.msg_id)
                apply_cost += self.layout.unit_bytes * self.config.twin_byte_us
                self.stats.diffs_applied += 1
                self.stats.diff_words_applied += self.layout.words_per_unit
                if self.trace is not None:
                    pages = tuple(self.layout.pages_of_range(w0, w1 - w0))
                    self.trace.on_diff_apply(
                        self.pid, now, unit, home,
                        self.layout.words_per_unit, reply.msg_id,
                        pages,
                        (self.layout.words_per_page,) * len(pages),
                    )
        stall += 2 * self.config.msg_cpu_us * len(by_home)

        for unit in units:
            self.pending.pop(unit, None)
            self.pending_n[unit] = 0
        self.stats.mprotects += len(units)
        cost = (
            self.config.fault_trap_us
            + len(units) * self.config.mprotect_us
            + stall
            + apply_cost
        )
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=now,
                fault_id=fault_id,
                units=tuple(units),
                writers=len(by_home),
                exchange_ids=tuple(exchange_ids),
                stall_us=stall,
                cost_us=cost,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=now,
            units=tuple(units),
            writers=len(by_home),
            exchange_ids=tuple(exchange_ids),
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)


def _build(
    layout: "SharedHeapLayout",
    config: "SimConfig",
    store: "IntervalStore",
    network: "Network",
    stats: "ProtocolStats",
    clocks: "List[Clock]",
    credit: CreditFn,
) -> List[LrcProc]:
    procs = [
        HomeLrcProc(
            pid=pid,
            layout=layout,
            config=config,
            store=store,
            network=network,
            stats=stats,
            clock=clocks[pid],
            credit=credit,
        )
        for pid in range(config.nprocs)
    ]
    for p in procs:
        p.peers = procs
    return list(procs)


register(
    ProtocolInfo(
        name="hlrc",
        description=(
            "home-based LRC: diffs eagerly flushed to a per-unit home at "
            "release; a fault is one whole-unit round trip per home"
        ),
        build=_build,
    )
)

"""Chaos-sweep invariant gate."""

import json

import pytest

from repro.bench.golden import GOLDEN_DIR, GOLDEN_FIELDS, SMALL_DATASETS
from repro.bench.harness import ResultCache
from repro.bench.pool import SweepCell, run_cells
from repro.faults.gate import (
    FAULT_FIELDS,
    INVARIANT_FIELDS,
    chaos_cells,
    default_plan,
    run_chaos,
)
from repro.faults.plan import FaultPlan


@pytest.fixture(autouse=True)
def fresh_cache():
    ResultCache.clear()
    yield
    ResultCache.clear()


def test_field_taxonomy_partitions_golden_fields():
    assert set(FAULT_FIELDS) <= set(GOLDEN_FIELDS)
    assert "time_us" not in INVARIANT_FIELDS
    assert not set(INVARIANT_FIELDS) & set(FAULT_FIELDS)
    assert set(INVARIANT_FIELDS) | set(FAULT_FIELDS) | {"time_us"} == set(
        GOLDEN_FIELDS
    )
    assert "checksum" in INVARIANT_FIELDS


def test_chaos_cells_identity():
    plans = [default_plan(seed=s) for s in (0, 1)]
    cells = chaos_cells(plans, apps=["Jacobi"], labels=("4K", "Dyn"))
    assert len(cells) == 4
    # Cells differing only in plan seed resolve to distinct cache keys.
    assert len({c.key for c in cells}) == 4
    with pytest.raises(KeyError, match="unknown application"):
        chaos_cells(plans, apps=["Quake"])
    with pytest.raises(KeyError, match="unknown label"):
        chaos_cells(plans, apps=["Jacobi"], labels=("2K",))


def test_gate_passes_against_committed_baselines():
    report = run_chaos(seeds=2, apps=["Jacobi"], labels=("4K",))
    assert report.ok, report.render()
    assert len(report.verdicts) == 2
    assert report.app_retransmissions["Jacobi"] > 0
    assert report.totals["retransmissions"] > 0
    assert "chaos gate OK" in report.render()


def test_gate_detects_tampered_baseline(tmp_path):
    ds = SMALL_DATASETS["Jacobi"]
    golden = json.loads((GOLDEN_DIR / "Jacobi.json").read_text())
    golden[ds]["4K"]["checksum"] = 12345.0
    golden[ds]["4K"]["useful_messages"] += 1
    (tmp_path / "Jacobi.json").write_text(json.dumps(golden))
    report = run_chaos(seeds=1, apps=["Jacobi"], labels=("4K",),
                       golden_dir=tmp_path)
    assert not report.ok
    bad = [v for v in report.verdicts if not v.ok]
    assert len(bad) == 1
    diffed = {f for f, _, _ in bad[0].diffs}
    assert diffed == {"checksum", "useful_messages"}
    assert "chaos gate FAILED" in report.render()


def test_gate_reports_missing_baseline(tmp_path):
    report = run_chaos(seeds=1, apps=["Jacobi"], labels=("4K",),
                       golden_dir=tmp_path)
    assert not report.ok
    assert "no committed golden baseline" in report.verdicts[0].error


def test_gate_flags_quiet_apps_under_dropping_plan():
    # A plan that drops nothing cannot demand retransmissions...
    plan = FaultPlan.uniform(seed=0, jitter_us=10.0)
    report = run_chaos(seeds=1, plan=plan, apps=["Jacobi"], labels=("4K",))
    assert not plan.drops_messages
    assert report.quiet_apps == [] and report.ok
    # ...but a dropping plan with zero observed retransmissions is a
    # wiring failure, even if every counter matches.
    report.plan = default_plan()
    report.app_retransmissions["Jacobi"] = 0
    assert report.quiet_apps == ["Jacobi"] and not report.ok


def test_gate_surfaces_dropped_cells_as_failures():
    plan = FaultPlan.uniform(seed=0, drop_rate=0.5).replace(
        retries_enabled=False
    )
    report = run_chaos(seeds=1, plan=plan, apps=["Jacobi"], labels=("4K",))
    assert not report.ok
    assert "run failed" in report.verdicts[0].error
    assert "retransmission budget exhausted" in report.verdicts[0].error


def test_pool_isolates_failed_cells():
    ok_cell = SweepCell.make("Jacobi", SMALL_DATASETS["Jacobi"], "4K")
    bad_plan = FaultPlan.uniform(seed=0, drop_rate=0.5).replace(
        retries_enabled=False
    )
    bad_cell = SweepCell.make(
        "Jacobi", SMALL_DATASETS["Jacobi"], "4K",
        fault_plan=bad_plan.canonical(),
    )
    report = run_cells([ok_cell, bad_cell], jobs=1)
    assert len(report.failed) == 1
    assert report.failed[0][0] == str(bad_cell)
    assert "failed" in report.summary()
    # The healthy cell completed and is cached.
    assert ResultCache.cached(ok_cell.app, ok_cell.dataset, ok_cell.label)
    assert not ResultCache.cached(bad_cell.app, bad_cell.dataset,
                                  bad_cell.label, **bad_cell.kwargs)

"""Property: a suppression comment is strictly local.  Adding
``# detlint: ok(rule)`` to one line may flip that line's findings to
suppressed, but must never change what is reported on any *other* line.
A violation would mean a suppression can hide (or conjure) hazards at a
distance -- exactly what the per-line contract forbids."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.detlint import lint_source
from repro.analyze.rules import RULES

#: One hazardous statement per rule, plus benign filler; all are
#: complete single-line statements so any interleaving parses.
_LINES = [
    "for _x in {1, 2}: print(_x)",
    "_t = time.time()",
    "_r = random.random()",
    "_o = sorted(_items, key=id)",
    "_rep.faults += _n / 2",
    "x = 1",
    "y = [i for i in range(3)]",
]


@st.composite
def modules(draw):
    lines = draw(
        st.lists(st.sampled_from(_LINES), min_size=1, max_size=8)
    )
    return "\n".join(lines) + "\n"


def _by_line(report, skip_line):
    """(line, rule, suppressed) findings excluding ``skip_line``."""
    out = [
        (f.line, f.rule, f.suppressed)
        for f in report.findings
        if f.line != skip_line
    ]
    out += [
        (f.line, f.rule)
        for f in report.unused_suppressions
        if f.line != skip_line
    ]
    return out


@settings(max_examples=60, deadline=None)
@given(
    source=modules(),
    line_no=st.integers(min_value=1, max_value=8),
    rule=st.sampled_from([r.name for r in RULES]),
)
def test_suppression_is_local(source, line_no, rule):
    lines = source.splitlines()
    if line_no > len(lines):
        line_no = len(lines)
    before = lint_source(source, "<p>")

    lines[line_no - 1] += f"  # detlint: ok({rule})"
    after = lint_source("\n".join(lines) + "\n", "<p>")

    assert _by_line(before, line_no) == _by_line(after, line_no)

"""SharedArray: typed addressing over the heap."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks


@pytest.fixture
def tmk():
    return TreadMarks(SimConfig(nprocs=1), heap_bytes=1 << 18)


def run_one(tmk, body):
    return tmk.run(body)


class TestAllocation:
    def test_array_shapes_and_dtypes(self, tmk):
        a = tmk.array("f32", (16, 16), "float32")
        assert a.words_per_elem == 1
        b = tmk.array("c64", (8,), "complex64")
        assert b.words_per_elem == 2
        c = tmk.array("f64", (8,), "float64")
        assert c.words_per_elem == 2

    def test_sub_word_dtype_rejected(self, tmk):
        with pytest.raises(ValueError):
            tmk.array("bad", (4,), "int16")

    def test_page_alignment(self, tmk):
        a = tmk.array("a", (4,), "float32")
        b = tmk.array("b", (4,), "float32")
        assert b.alloc.offset % 4096 == 0


class TestAccess:
    def test_roundtrip_1d(self, tmk):
        arr = tmk.array("x", (128,), "float32")

        def body(proc):
            vals = np.linspace(0, 1, 16, dtype=np.float32)
            arr.write(proc, 10, vals)
            got = arr.read(proc, 10, 16)
            assert np.array_equal(got, vals)

        run_one(tmk, body)

    def test_roundtrip_2d_rows(self, tmk):
        arr = tmk.array("m", (8, 32), "float32")

        def body(proc):
            row = np.arange(32, dtype=np.float32)
            arr.write_row(proc, 3, row)
            assert np.array_equal(arr.read_row(proc, 3), row)
            block = np.ones((2, 32), np.float32)
            arr.write_rows(proc, 5, block)
            assert np.array_equal(arr.read_rows(proc, 5, 7), block)

        run_one(tmk, body)

    def test_complex_roundtrip(self, tmk):
        arr = tmk.array("z", (16,), "complex64")

        def body(proc):
            vals = (np.arange(4) + 1j * np.arange(4)).astype(np.complex64)
            arr.write(proc, 2, vals)
            assert np.array_equal(arr.read(proc, 2, 4), vals)

        run_one(tmk, body)

    def test_int_roundtrip_preserves_bits(self, tmk):
        arr = tmk.array("i", (16,), "int32")

        def body(proc):
            vals = np.array([-1, 0, 2**31 - 1, -(2**31)], np.int32)
            arr.write(proc, 0, vals)
            assert np.array_equal(arr.read(proc, 0, 4), vals)

        run_one(tmk, body)

    def test_tuple_indexing(self, tmk):
        arr = tmk.array("t", (4, 8), "float32")

        def body(proc):
            arr.write(proc, (2, 3), np.array([5.0], np.float32))
            assert arr.read(proc, (2, 3), 1)[0] == 5.0

        run_one(tmk, body)


class TestErrors:
    def test_read_past_end(self, tmk):
        arr = tmk.array("e", (8,), "float32")

        def body(proc):
            with pytest.raises(IndexError):
                arr.read(proc, 6, 4)

        run_one(tmk, body)

    def test_write_past_end(self, tmk):
        arr = tmk.array("e2", (8,), "float32")

        def body(proc):
            with pytest.raises(IndexError):
                arr.write(proc, 6, np.zeros(4, np.float32))

        run_one(tmk, body)

    def test_row_access_on_1d_rejected(self, tmk):
        arr = tmk.array("r", (8,), "float32")

        def body(proc):
            with pytest.raises(IndexError):
                arr.read_row(proc, 0)

        run_one(tmk, body)

    def test_int_index_on_2d_rejected(self, tmk):
        arr = tmk.array("m2", (4, 4), "float32")

        def body(proc):
            with pytest.raises(IndexError):
                arr.read(proc, 3, 1)

        run_one(tmk, body)

    def test_oversized_array_rejected(self, tmk):
        with pytest.raises(MemoryError):
            tmk.array("huge", (1 << 22,), "float32")

"""The one-stop tracer CLI (python -m repro.trace)."""

import json

import pytest

from repro.apps.base import get_app
from repro.trace.cli import main, resolve_app, resolve_dataset, resolve_unit


def test_resolve_app_is_case_insensitive():
    assert resolve_app("jacobi") == "Jacobi"
    assert resolve_app("ILINK") == "ILINK"
    assert resolve_app("3d-fft") == "3D-FFT"
    with pytest.raises(SystemExit):
        resolve_app("nope")


def test_resolve_dataset_aliases():
    app = get_app("Jacobi")
    labels = sorted(app.datasets, key=app.heap_bytes)
    assert resolve_dataset(app, "small") == labels[0]
    assert resolve_dataset(app, "large") == labels[-1]
    assert resolve_dataset(app, labels[0]) == labels[0]
    with pytest.raises(SystemExit):
        resolve_dataset(app, "bogus")


def test_resolve_unit():
    assert resolve_unit("4k") == "4K"
    assert resolve_unit("DYN") == "Dyn"
    with pytest.raises(SystemExit):
        resolve_unit("2K")


def test_acceptance_invocation(tmp_path, capsys):
    """The ISSUE acceptance command: valid Chrome-trace JSON with
    per-processor thread ids."""
    out = tmp_path / "t.json"
    rc = main(["jacobi", "small", "4K", "--out", str(out)])
    assert rc == 0
    doc = json.load(open(out))
    assert "traceEvents" in doc
    tids = {e["tid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert tids == set(range(8))
    text = capsys.readouterr().out
    assert "race-free" in text
    assert "False-sharing attribution" in text


def test_jsonl_and_flags(tmp_path, capsys):
    out = tmp_path / "ev.jsonl"
    rc = main([
        "jacobi", "small", "4k", "--jsonl", str(out),
        "--no-races", "--top", "3", "--nprocs", "4",
    ])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert lines and all(json.loads(ln)["kind"] for ln in lines)
    text = capsys.readouterr().out
    assert "happens-before" not in text  # --no-races
    assert "on 4 procs" in text

"""Clock-charge pinning for the bulk region-access API.

The bulk fast path folds per-range clock charges analytically
(:meth:`repro.dsm.lrc.LrcProc._fold_end`) and resolves faults, twins,
and diff costs per touched unit.  These tests pin the charging model to
*hand-derived* arithmetic spelled out from the raw ``SimConfig``
constants: a 3-page ``write_range`` by a second writer after a barrier,
under each protocol of the zoo.  Any change to the analytic model (or
to a protocol's fault path) that alters a charge must show up here as
an explicit number, not only as drift in an opaque golden counter.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.dsm.lrc import LrcProc
from repro.sim.clock import Clock

PAGE = 4096          # unit_pages=1 -> one 4 KB page per consistency unit
WPU = PAGE // 4      # 1024 words per unit
NUNITS = 3
W = NUNITS * WPU     # the 3-page write_range, in words


def _msg(cfg: SimConfig, payload: int) -> float:
    """``SimConfig.msg_cost_us`` written out by hand."""
    return cfg.msg_latency_us + (payload + cfg.msg_header_bytes) * cfg.byte_time_us


def _run_second_writer(protocol: str) -> tuple:
    """Proc 0 writes 3 pages and crosses a barrier; proc 1 then writes
    the same 3 pages.  Returns (charge to proc 1's clock for its
    write_range, the run's ProtocolStats)."""
    cfg = SimConfig(nprocs=2, unit_pages=1, protocol=protocol)
    tmk = TreadMarks(cfg, heap_bytes=NUNITS * PAGE)
    measured = {}

    def body(proc):
        vals = np.arange(1, W + 1, dtype=np.uint32)  # every word changes
        if proc.id == 0:
            proc.write_range(0, vals)
        proc.barrier()
        if proc.id == 1:
            t0 = proc.time_us
            proc.write_range(0, vals)
            measured["charge"] = proc.time_us - t0

    res = tmk.run(body)
    return measured["charge"], res.stats


def test_tm_lrc_charges():
    """tm-lrc: three per-unit faults (word-granularity diffs, lazily
    scanned on first request), three twins, one region access charge."""
    charge, stats = _run_second_writer("tm-lrc")
    cfg = SimConfig(nprocs=2, unit_pages=1)
    # One fault per invalid unit (static unit: no cross-unit combining).
    # The single writer's diff covers the whole page as one run:
    # 16-byte diff header + 8-byte run header + 1024 words.
    req_bytes = 8 + 12 * 1                    # REQUEST_BASE + 1 entry
    reply_bytes = 16 + 8 + WPU * 4
    stall = (
        _msg(cfg, req_bytes)
        + cfg.diff_service_us
        + PAGE * cfg.diff_create_byte_us      # lazy scan, first request
        + _msg(cfg, reply_bytes)
        + 2 * cfg.msg_cpu_us
    )
    fault = (
        cfg.fault_trap_us
        + cfg.mprotect_us                     # revalidate the unit
        + stall
        + PAGE * cfg.diff_apply_byte_us
    )
    twin = cfg.mprotect_us + PAGE * cfg.twin_byte_us
    access = cfg.region_op_us + W * cfg.word_access_us
    assert charge == pytest.approx(3 * fault + 3 * twin + access, rel=1e-12)
    assert stats.faults == NUNITS
    assert stats.twins == 2 * NUNITS          # both writers twin 3 units
    assert stats.diffs_created == NUNITS
    assert stats.diffs_applied == NUNITS


def test_hlrc_charges():
    """hlrc: homes are ``unit % 2`` -- proc 1 is home of unit 1 (kept
    current by the flush, no fault); units 0 and 2 fault with one
    whole-unit round trip to home proc 0 each."""
    charge, stats = _run_second_writer("hlrc")
    cfg = SimConfig(nprocs=2, unit_pages=1)
    req_bytes = 8 + 12 * 1
    reply_bytes = PAGE + 16                   # full unit + diff header
    stall = (
        _msg(cfg, req_bytes)
        + cfg.diff_service_us                 # diff was pre-scanned at release
        + _msg(cfg, reply_bytes)
        + 2 * cfg.msg_cpu_us
    )
    fault = (
        cfg.fault_trap_us
        + cfg.mprotect_us
        + stall
        + PAGE * cfg.twin_byte_us             # whole-unit copy-in
    )
    twin = cfg.mprotect_us + PAGE * cfg.twin_byte_us
    access = cfg.region_op_us + W * cfg.word_access_us
    assert charge == pytest.approx(2 * fault + 3 * twin + access, rel=1e-12)
    assert stats.faults == 2


def test_erc_charges():
    """erc: the release pushed every diff eagerly -- proc 1 never
    faults; it pays only its own twins and the access charge."""
    charge, stats = _run_second_writer("erc")
    cfg = SimConfig(nprocs=2, unit_pages=1)
    twin = cfg.mprotect_us + PAGE * cfg.twin_byte_us
    access = cfg.region_op_us + W * cfg.word_access_us
    assert charge == pytest.approx(3 * twin + access, rel=1e-12)
    assert stats.faults == 0


def test_swi_charges():
    """swi: three whole-unit refetches from the owner, then three
    ownership acquisitions (transfer round trip + one invalidation
    round trip to the previous owner, who re-entered the copyset when
    it served the refetch).  No twins: coherence is per access."""
    charge, stats = _run_second_writer("swi")
    cfg = SimConfig(nprocs=2, unit_pages=1)
    req_bytes = 8 + 12 * 1
    reply_bytes = PAGE + 16
    stall = (
        _msg(cfg, req_bytes)
        + cfg.diff_service_us
        + _msg(cfg, reply_bytes)
        + 2 * cfg.msg_cpu_us
    )
    fault = (
        cfg.fault_trap_us
        + cfg.mprotect_us
        + stall
        + PAGE * cfg.twin_byte_us
    )
    take_ownership = (
        cfg.fault_trap_us + cfg.mprotect_us   # write-protection trap
        + _msg(cfg, 16) + _msg(cfg, 16) + 2 * cfg.msg_cpu_us  # transfer
        + _msg(cfg, 12) + _msg(cfg, 8) + 2 * cfg.msg_cpu_us   # invalidate
    )
    access = cfg.region_op_us + W * cfg.word_access_us
    expected = 3 * fault + 3 * take_ownership + access
    assert charge == pytest.approx(expected, rel=1e-12)
    assert stats.faults == NUNITS
    assert stats.twins == 0
    assert stats.ownership_transfers == NUNITS


# ----------------------------------------------------------------------
# The clock fold
# ----------------------------------------------------------------------
def _fold_end(now: float, n: int, per: float) -> float:
    fake = SimpleNamespace(clock=Clock(now))
    return LrcProc._fold_end(fake, n, per)


def test_fold_end_bit_identical_to_advance_loop():
    """``_fold_end(n, per)`` must equal ``n`` sequential
    ``Clock.advance(per)`` calls *bitwise* -- the fast path folds the
    reference loop's float additions, it does not approximate them.
    ``cumsum`` accumulates left-to-right in float64, the same
    associativity as repeated ``+=``."""
    rng = np.random.default_rng(42)
    for _ in range(300):
        now = float(rng.uniform(0.0, 1e8))
        per = float(rng.choice([0.012, 1.0, 13.288, rng.uniform(0, 50)]))
        n = int(rng.integers(0, 400))
        clock = Clock(now)
        for _i in range(n):
            clock.advance(per)
        assert _fold_end(now, n, per) == clock.now  # exact, not approx


def test_fold_end_zero_ranges_is_identity():
    assert _fold_end(123.456, 0, 7.89) == 123.456

"""Protocol event counters and per-fault records.

:class:`ProtocolStats` aggregates the low-level consistency actions the
paper discusses as the non-communication costs of larger units (twinning,
diffing, memory-protection operations, access faults), and keeps one
:class:`FaultRecord` per access miss for the false-sharing signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class FaultRecord:
    """One access miss serviced by the protocol.

    ``writers`` is the number of concurrent writers the faulting
    processor had to exchange messages with -- ``card(CW(unit))`` in the
    paper's Section-3 formula; ``exchange_ids`` index the network ledger
    so the signature can split each exchange into useful / useless after
    word usefulness resolves."""

    fault_id: int
    proc: int
    time_us: float
    units: tuple
    writers: int
    exchange_ids: tuple
    monitoring: bool = False
    """True for dynamic-aggregation access-tracking faults that requested
    no data (the Section-4 monitoring overhead)."""

    trace_eid: Optional[int] = None
    """Event id of this fault in the run's trace (``SimConfig.trace``),
    so signature cells can be cross-referenced from the timeline; None
    when tracing is off."""


@dataclass
class ProtocolStats:
    """Run-wide consistency-action counters."""

    faults: int = 0
    """Access misses that requested data."""

    monitoring_faults: int = 0
    """Dynamic-mode faults that requested no data (access tracking)."""

    twins: int = 0
    """Twin copies created (first write to a unit in an interval)."""

    diffs_created: int = 0
    diff_words_created: int = 0
    diffs_applied: int = 0
    diff_words_applied: int = 0

    mprotects: int = 0
    """Modelled memory-protection operations."""

    intervals_closed: int = 0
    write_notices_sent: int = 0

    lock_acquires: int = 0
    lock_remote_acquires: int = 0
    barriers: int = 0

    # ------------------------------------------------------------------
    # Protocol-zoo counters (repro.protocols): all zero under tm-lrc.
    # ------------------------------------------------------------------
    diff_flushes: int = 0
    """Diffs eagerly flushed to a home node at release (hlrc)."""

    update_pushes: int = 0
    """Release-time update messages pushed to sharers (erc)."""

    ownership_transfers: int = 0
    """Unit ownership moved between processors (swi) -- the ping-pong
    counter: false sharing under an invalidate protocol shows up here."""

    invalidations: int = 0
    """Invalidation messages sent to copy holders (swi)."""

    # ------------------------------------------------------------------
    # Fault-lab counters (repro.faults): all zero on a reliable network.
    # ------------------------------------------------------------------
    retransmissions: int = 0
    """Message copies re-sent by the reliable-delivery layer (timeouts
    plus lost-ack resends)."""

    duplicate_deliveries: int = 0
    """Copies the receiver saw more than once and discarded."""

    timeout_stalls: int = 0
    """Retransmission timeouts a sender sat through (each contributes
    shadow stall time to the waiting processor)."""

    fault_records: List[FaultRecord] = field(default_factory=list)

    def record_fault(
        self,
        proc: int,
        time_us: float,
        units: tuple,
        writers: int,
        exchange_ids: tuple,
        monitoring: bool = False,
        trace_eid: Optional[int] = None,
    ) -> FaultRecord:
        """Append a fault record and bump the matching counter."""
        rec = FaultRecord(
            fault_id=len(self.fault_records),
            proc=proc,
            time_us=time_us,
            units=units,
            writers=writers,
            exchange_ids=exchange_ids,
            monitoring=monitoring,
            trace_eid=trace_eid,
        )
        self.fault_records.append(rec)
        if monitoring:
            self.monitoring_faults += 1
        else:
            self.faults += 1
        return rec

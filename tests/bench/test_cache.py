"""On-disk result cache: keying, invalidation, round-trip fidelity."""

import json

import pytest

from repro.bench.cache import (
    CACHE_SCHEMA,
    DiskCache,
    cell_key,
    cell_seed,
    code_version,
)
from repro.bench.harness import CaseResult, ResultCache, config_for, run_case
from repro.sim.config import SimConfig


@pytest.fixture
def case():
    return run_case("Jacobi", "1Kx1K", "4K")


class TestKeys:
    def test_key_is_stable(self):
        cfg = SimConfig()
        assert cell_key("Jacobi", "1Kx1K", cfg) == cell_key("Jacobi", "1Kx1K", cfg)

    def test_key_varies_with_identity(self):
        cfg = SimConfig()
        base = cell_key("Jacobi", "1Kx1K", cfg)
        assert cell_key("MGS", "1Kx1K", cfg) != base
        assert cell_key("Jacobi", "2Kx2K", cfg) != base
        assert cell_key("Jacobi", "1Kx1K", cfg.replace(unit_pages=2)) != base

    def test_equivalent_config_spellings_share_a_key(self):
        # The key hashes the resolved config, not the spelling.
        assert cell_key("Jacobi", "1Kx1K", config_for("4K")) == cell_key(
            "Jacobi", "1Kx1K", config_for("4K", unit_pages=1)
        )

    def test_code_version_tracks_source_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        v1 = code_version(tmp_path)
        assert v1 == code_version(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert code_version(tmp_path) != v1
        (tmp_path / "b.py").write_text("")
        v3 = code_version(tmp_path)
        assert v3 != v1

    def test_seed_independent_of_code_version(self):
        # Seeds key results across commits; they must not churn with code.
        cfg = SimConfig()
        s = cell_seed("Jacobi", "1Kx1K", cfg)
        assert 0 <= s < 2**32
        assert s == cell_seed("Jacobi", "1Kx1K", cfg)
        assert s != cell_seed("Jacobi", "1Kx1K", cfg.replace(unit_pages=2))


class TestDiskCache:
    def test_roundtrip_is_lossless(self, tmp_path, case):
        disk = DiskCache(tmp_path)
        cfg = config_for("4K")
        disk.store("Jacobi", "1Kx1K", "4K", cfg, case)
        loaded = disk.load("Jacobi", "1Kx1K", "4K", cfg)
        assert loaded == case  # field-for-field, floats exact
        assert disk.hits == 1 and disk.stores == 1

    def test_miss_on_absent_entry(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert disk.load("Jacobi", "1Kx1K", "4K", config_for("4K")) is None
        assert disk.misses == 1

    def test_miss_on_corrupt_entry(self, tmp_path, case):
        disk = DiskCache(tmp_path)
        cfg = config_for("4K")
        path = disk.store("Jacobi", "1Kx1K", "4K", cfg, case)
        path.write_text("{ not json")
        assert disk.load("Jacobi", "1Kx1K", "4K", cfg) is None

    def test_miss_on_schema_bump(self, tmp_path, case):
        disk = DiskCache(tmp_path)
        cfg = config_for("4K")
        path = disk.store("Jacobi", "1Kx1K", "4K", cfg, case)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(entry))
        assert disk.load("Jacobi", "1Kx1K", "4K", cfg) is None

    def test_entry_names_are_readable(self, tmp_path, case):
        disk = DiskCache(tmp_path)
        path = disk.store("Jacobi", "1Kx1K", "4K", config_for("4K"), case)
        assert path.name.startswith("Jacobi-1Kx1K-4K-")

    def test_clear(self, tmp_path, case):
        disk = DiskCache(tmp_path)
        disk.store("Jacobi", "1Kx1K", "4K", config_for("4K"), case)
        assert len(disk) == 1
        assert disk.clear() == 1
        assert len(disk) == 0


class TestResultCacheDiskLayer:
    def test_second_process_equivalent_load(self, tmp_path):
        """A fresh in-memory cache (i.e. a new invocation) is served from
        disk without re-running the simulation."""
        disk = DiskCache(tmp_path)
        old = ResultCache.disk()
        try:
            ResultCache.configure(disk)
            ResultCache.clear()
            first = ResultCache.get("Jacobi", "1Kx1K", "4K")
            assert disk.stores == 1
            ResultCache.clear()  # simulate a new process
            again = ResultCache.get("Jacobi", "1Kx1K", "4K")
            assert disk.hits == 1
            assert again == first
        finally:
            ResultCache.configure(old)
            ResultCache.clear()


class TestCaseResultJson:
    def test_signature_keys_survive_roundtrip(self, case):
        data = json.loads(json.dumps(case.to_json_dict()))
        back = CaseResult.from_json_dict(data)
        assert back == case
        assert all(isinstance(k, int) for k in back.signature)

"""Random-program coherence oracle.

Generates random barrier-phased shared-memory programs (each processor
writes random regions of its own interleaved word partition -- plenty of
write-write false sharing, no data races) and checks every read against a
sequentially-consistent oracle:

* during a round, a processor sees the post-barrier state plus its own
  writes, and must NOT see other processors' in-flight writes (LRC);
* after a barrier, everyone sees every write.

Runs across all consistency configurations, which is the strongest form
of the coherence-invariance requirement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimConfig, TreadMarks

NWORDS = 4 * 1024  # 4 pages
STRIPE = 8  # word i belongs to proc (i // STRIPE) % nprocs


def owner_of(word, nprocs):
    return (word // STRIPE) % nprocs


@st.composite
def programs(draw):
    nprocs = draw(st.integers(2, 4))
    nrounds = draw(st.integers(1, 4))
    rounds = []
    for _ in range(nrounds):
        writes = {}
        for p in range(nprocs):
            ops = []
            for _ in range(draw(st.integers(0, 3))):
                start = draw(st.integers(0, NWORDS - STRIPE))
                # Snap into p's stripe so writes never race.
                stripe_base = (start // STRIPE) * STRIPE
                k = stripe_base // STRIPE
                if k % nprocs != p:
                    stripe_base += ((p - k) % nprocs) * STRIPE
                if stripe_base + STRIPE > NWORDS:
                    continue
                length = draw(st.integers(1, STRIPE))
                value = draw(st.integers(1, 2**31))
                ops.append((stripe_base, length, value))
            writes[p] = ops
        reads = {
            p: [
                draw(st.integers(0, NWORDS - 64))
                for _ in range(draw(st.integers(0, 2)))
            ]
            for p in range(nprocs)
        }
        rounds.append((writes, reads))
    return nprocs, rounds


CONFIGS = [
    dict(unit_pages=1),
    dict(unit_pages=2),
    dict(unit_pages=4),
    dict(dynamic=True),
]


@given(programs(), st.sampled_from(CONFIGS))
@settings(max_examples=25, deadline=None)
def test_random_program_matches_oracle(program, cfg_kwargs):
    nprocs, rounds = program
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, **cfg_kwargs), heap_bytes=NWORDS * 4
    )
    arr = tmk.array("a", (NWORDS,), "uint32")

    # Oracle: committed state after each barrier.
    committed = [np.zeros(NWORDS, dtype=np.uint32)]
    for writes, _ in rounds:
        nxt = committed[-1].copy()
        for p, ops in writes.items():
            for start, length, value in ops:
                nxt[start : start + length] = value
        committed.append(nxt)

    failures = []

    def body(proc):
        p = proc.id
        for r, (writes, reads) in enumerate(rounds):
            view = committed[r].copy()
            for start, length, value in writes[p]:
                arr.write(
                    proc, start, np.full(length, value, np.uint32)
                )
                view[start : start + length] = value
            for start in reads[p]:
                got = arr.read(proc, start, 64)
                expect = np.where(
                    np.array(
                        [owner_of(w, nprocs) == p for w in range(start, start + 64)]
                    ),
                    view[start : start + 64],
                    committed[r][start : start + 64],
                )
                if not np.array_equal(got, expect):
                    failures.append((p, r, start))
            proc.barrier(r)
        # Final check: everyone sees the fully committed state.
        got = arr.read(proc, 0, NWORDS)
        if not np.array_equal(got, committed[-1]):
            failures.append((p, "final", -1))
        proc.barrier(999)

    tmk.run(body)
    assert not failures, failures


PROTOCOLS = ("tm-lrc", "hlrc", "erc", "swi")


@given(programs())
@settings(max_examples=10, deadline=None)
def test_final_state_is_protocol_invariant(program):
    """The zoo-wide oracle: a random race-free barrier-phased program
    leaves bit-identical final memory under every consistency protocol
    (the in-flight visibility rules differ -- eager protocols may
    legitimately publish sooner than LRC -- but the post-barrier state
    may not)."""
    nprocs, rounds = program
    finals = {}
    for protocol in PROTOCOLS:
        tmk = TreadMarks(
            SimConfig(nprocs=nprocs, protocol=protocol),
            heap_bytes=NWORDS * 4,
        )
        arr = tmk.array("a", (NWORDS,), "uint32")
        holder = {}

        def body(proc):
            for r, (writes, _) in enumerate(rounds):
                for start, length, value in writes[proc.id]:
                    arr.write(
                        proc, start, np.full(length, value, np.uint32)
                    )
                proc.barrier(r)
            got = arr.read(proc, 0, NWORDS)
            if proc.id == 0:
                holder["final"] = got.copy()
            proc.barrier(999)
            return float(got.sum())

        res = tmk.run(body)
        finals[protocol] = (res.checksum, holder["final"])

    # Oracle: apply all writes in any order (disjoint stripes).
    expect = np.zeros(NWORDS, dtype=np.uint32)
    for writes, _ in rounds:
        for p, ops in writes.items():
            for start, length, value in ops:
                expect[start : start + length] = value

    for protocol, (checksum, final) in finals.items():
        assert checksum == finals["tm-lrc"][0], protocol
        assert np.array_equal(final, expect), protocol


@given(st.integers(2, 4), st.integers(1, 6), st.sampled_from(CONFIGS))
@settings(max_examples=15, deadline=None)
def test_lock_counter_never_loses_updates(nprocs, increments, cfg_kwargs):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg_kwargs), heap_bytes=1 << 14)
    arr = tmk.array("ctr", (4,), "uint32")

    def body(proc):
        for _ in range(increments):
            proc.acquire(1)
            v = int(arr.read(proc, 0, 1)[0])
            arr.write(proc, 0, np.array([v + 1], np.uint32))
            proc.release(1)
        proc.barrier()
        return float(arr.read(proc, 0, 1)[0])

    res = tmk.run(body)
    assert res.checksum == nprocs * increments
